/**
 * @file
 * Fault-tolerant multi-process sweep service.
 *
 * A sweep expands a JSON spec (config grid x seeds x mechanisms) into
 * independent runs and shards them across host cores, one forked+exec'd
 * worker process per run, so a worker crash, sanitizer abort, or OOM
 * kill cannot take down the service. The driver enforces a per-run
 * wall-clock timeout with SIGTERM -> SIGKILL escalation, retries failed
 * runs with exponential backoff and deterministic jitter, and
 * quarantines runs that keep failing so the rest of the sweep completes
 * with an explicit degraded-result report instead of dying.
 *
 * Progress is journaled: an append-only JSONL run ledger plus one
 * atomically-published JSON artifact per run (sim/artifact.hh), so
 * `resume=1` picks up an interrupted sweep — including one whose driver
 * was SIGKILLed — without re-running completed work. Long kernel runs
 * can additionally embed a PR-3-format checkpoint (sim/snapshot.hh) in
 * their artifact for replay-grade post-mortems.
 *
 * A final aggregation stage merges the per-run artifacts into one
 * deterministic aggregate (host-timing noise is split into a separate
 * sim-speed sidecar, so an interrupted-then-resumed sweep aggregates
 * bit-identically to an uninterrupted one) and compares it against
 * committed BENCH_*.json baselines, producing a typed regression report
 * when figure cycle counts or simulator MIPS regress beyond threshold.
 */

#ifndef BFSIM_SYS_SWEEP_HH
#define BFSIM_SYS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace bfsim
{

/** Retry / timeout / concurrency policy for one sweep. */
struct SweepPolicy
{
    /** Per-run wall-clock budget; expiry sends SIGTERM. */
    double timeoutSec = 120.0;
    /** Grace after SIGTERM before SIGKILL escalation. */
    double killGraceSec = 5.0;
    /** Total attempts per run before quarantine. */
    unsigned maxAttempts = 3;
    /** Exponential backoff: base * 2^(failures-1), capped, jittered. */
    double backoffBaseMs = 200.0;
    double backoffMaxMs = 10'000.0;
    /** Concurrent worker processes; 0 = online host cores. */
    unsigned jobs = 0;
};

/**
 * Planted faults for the driver's own test suite: listed runs crash
 * (abort() with a half-written .tmp artifact) or hang (sleep forever,
 * forcing the timeout/kill path) on their first @ref attempts attempts.
 * Carried in the spec so tests exercise the exact production worker
 * path; production specs simply leave this empty.
 */
struct SweepSabotage
{
    std::vector<std::string> crashRuns;
    std::vector<std::string> hangRuns;
    unsigned attempts = 1;
};

/** Parsed sweep specification (see parseSweepSpec for the JSON shape). */
struct SweepSpec
{
    std::string name = "sweep";
    /** "fig4" (barrier-latency microbench), "kernel" (full kernels), or
     *  "ras" (soft-error fault campaign; see docs/ROBUSTNESS.md §11). */
    std::string mode = "fig4";

    // Grid axes; the cross product expands into runs.
    std::vector<unsigned> cores = {4, 8};
    /** Barrier mechanism names (os.hh); empty = all mechanisms. */
    std::vector<std::string> mechanisms;
    /** Kernel input seeds (kernel mode; fig4 ignores seeds). */
    std::vector<uint64_t> seeds = {12345};
    /** Kernel names (kernel mode). */
    std::vector<std::string> kernels = {"livermore3"};

    // Workload sizing.
    uint64_t n = 256;        ///< kernel vector length
    unsigned reps = 2;       ///< kernel repetitions
    unsigned barriers = 16;  ///< fig4: barriers per loop
    unsigned loops = 2;      ///< fig4: loop trip count

    /** kernel mode: execute under the PR 3 snapshot recorder and embed
     *  a replayable checkpoint in the run artifact. */
    bool checkpoint = false;

    // ras mode: the fault-campaign axes (sites x detection tiers x bit
    // multiplicities, crossed with kernels/cores/mechanisms/seeds).
    /** Injection sites: fsm | arrived | members | mask | fillmeta | bus |
     *  saved ("saved" runs a virtualized churn workload so the context
     *  table holds swapped-out images to corrupt). */
    std::vector<std::string> sites = {"fsm", "arrived", "mask", "bus"};
    /** Detection tiers swept: none | parity | secded (for the "bus"
     *  site, any tier but "none" arms the message CRC instead). */
    std::vector<std::string> detect = {"none", "parity", "secded"};
    /** Flips planted per injection. */
    std::vector<unsigned> bits = {1};
    /** Tick of the targeted injection (faults.flipAt). */
    uint64_t flipAt = 2000;

    /** Raw "key=value" CmpConfig overrides applied to every run. */
    std::vector<std::string> config;

    SweepPolicy policy;
    SweepSabotage sabotage;
};

/**
 * Parse a sweep spec document:
 * {
 *   "name": "fig4-smoke", "mode": "fig4",
 *   "cores": [4, 8], "mechanisms": ["filter-dcache", ...],
 *   "seeds": [12345], "kernels": ["livermore3"],
 *   "n": 256, "reps": 2, "barriers": 16, "loops": 2,
 *   "checkpoint": false, "config": ["l2banks=4"],
 *   "policy": {"timeoutSec": 120, "maxAttempts": 3, "jobs": 0,
 *              "killGraceSec": 5, "backoffBaseMs": 200,
 *              "backoffMaxMs": 10000},
 *   "sabotage": {"crashRuns": [...], "hangRuns": [...], "attempts": 1}
 * }
 * Every member is optional except mode-appropriate axes; unknown members
 * are a fatal error (a typo must not silently sweep the wrong grid).
 * @throws FatalError on malformed input.
 */
SweepSpec parseSweepSpec(const JsonValue &v);

/** Read + parse a spec file. @throws FatalError on IO/parse errors. */
SweepSpec loadSweepSpec(const std::string &path);

/** Serialize @p spec (inverse of parseSweepSpec, canonical form). */
void writeSweepSpec(JsonWriter &w, const SweepSpec &spec);

/** One expanded run of the grid. */
struct SweepRun
{
    std::string id;         ///< stable key, e.g. "fig4.c8.filter-dcache"
    std::string mode;       ///< copied from the spec
    std::string mechanism;  ///< barrier kind name
    unsigned cores = 0;
    std::string kernel;     ///< kernel/ras modes
    uint64_t seed = 0;      ///< kernel input seed (kernel/ras modes)
    std::string site;       ///< ras mode: injection site
    std::string detect;     ///< ras mode: detection tier
    unsigned bits = 1;      ///< ras mode: flips per injection
};

/**
 * Expand the spec's grid into runs in deterministic order (the aggregate
 * lists results in this order regardless of completion order).
 * @throws FatalError on unknown mechanism/kernel names.
 */
std::vector<SweepRun> expandSweep(const SweepSpec &spec);

/**
 * Worker entry: execute run @p runId of @p spec and publish its artifact
 * atomically at @p outPath. Honors spec.sabotage for @p attempt. Returns
 * the process exit code (0 success).
 */
int executeSweepRun(const SweepSpec &spec, const std::string &runId,
                    unsigned attempt, const std::string &outPath);

/** Driver-side lifecycle of one run. */
enum class RunStatus
{
    Pending,      ///< not yet attempted (or awaiting retry backoff)
    Running,      ///< worker process alive
    Done,         ///< artifact published and validated
    Quarantined,  ///< failed maxAttempts times; excluded from aggregate
};

struct SweepRunOutcome
{
    std::string id;
    RunStatus status = RunStatus::Pending;
    unsigned failures = 0;      ///< failed attempts observed
    std::string lastError;      ///< e.g. "signal:6", "timeout", "exit:1"
};

/** What one driver invocation did. */
struct SweepResult
{
    bool degraded = false;      ///< at least one run quarantined
    unsigned completed = 0;     ///< runs Done at exit (incl. resumed)
    unsigned quarantined = 0;
    unsigned retries = 0;       ///< failed attempts this invocation
    unsigned skipped = 0;       ///< resumed runs skipped as already Done
    /** requestSweepStop() fired: workers killed, journal cut, no
     *  aggregate written; the sweep is resumable with resume=1. */
    bool interrupted = false;
    std::vector<SweepRunOutcome> runs;
    std::string aggregatePath;  ///< merged deterministic artifact
    std::string simspeedPath;   ///< host-timing sidecar (MIPS)
    std::string ledgerPath;
};

struct SweepDriverOptions
{
    std::string outDir;
    /** Binary to exec per run; empty = /proc/self/exe. Workers are
     *  invoked as: exe --worker spec=F run=ID attempt=N out=F with
     *  BFSIM_SWEEP_WORKER=1 in the environment. */
    std::string workerExe;
    /** Pick up a prior interrupted sweep from outDir's ledger. */
    bool resume = false;
    /** Override spec.policy.jobs when nonzero. */
    unsigned jobs = 0;
};

/**
 * Run the sweep: shard runs across workers, retry/quarantine, journal,
 * aggregate. Never throws for per-run failures (that is the point);
 * throws FatalError only for driver-level misuse (bad outDir, resume
 * against a different spec).
 */
SweepResult runSweep(const SweepSpec &spec, const SweepDriverOptions &opts);

/**
 * Ask a running runSweep to stop at the next scheduling point
 * (async-signal-safe; the CLI's SIGINT/SIGTERM handlers call this).
 * Running workers are SIGKILLed and journaled as interrupted.
 */
void requestSweepStop();

/** One baseline-vs-current comparison. */
struct RegressionEntry
{
    std::string id;      ///< run id ("" for sweep-wide metrics)
    std::string metric;  ///< "cyclesPerBarrier", "cycles", "mips", ...
    double baseline = 0.0;
    double current = 0.0;
    double ratio = 1.0;  ///< current / baseline
    bool regressed = false;
};

/** Typed regression report (the CI gate's artifact). */
struct RegressionReport
{
    bool failed = false;
    std::vector<RegressionEntry> entries;
    /** Baseline run ids absent from the current aggregate — a silently
     *  dropped configuration fails the gate. */
    std::vector<std::string> missing;

    /** Human-readable multi-line summary (one line per regression). */
    std::string summary() const;
    void writeJson(JsonWriter &w) const;
};

/**
 * Compare a sweep aggregate against a committed baseline aggregate.
 * Simulated-performance metrics are deterministic, so @p tolerance is a
 * small guard band (default 0.05 in the CLI): a run regresses when its
 * cycle metric exceeds baseline * (1 + tolerance), when a correct
 * kernel run becomes incorrect, or when a baseline run id disappears.
 */
RegressionReport compareAggregate(const JsonValue &current,
                                  const JsonValue &baseline,
                                  double tolerance);

/**
 * Compare a sim-speed sidecar against its baseline. Host throughput is
 * noisy across machines, so @p tolerance is lenient (default 0.8 in the
 * CLI: fail only when MIPS drop below 20% of baseline — a catastrophic
 * simulator slowdown, not scheduler jitter).
 */
RegressionReport compareSimspeed(const JsonValue &current,
                                 const JsonValue &baseline,
                                 double tolerance);

/**
 * Gate a ras-mode aggregate's "rasCoverage" section. Two baseline-free
 * hard floors: under secded, at least 95% of injected runs must detect
 * their fault, and silent corruptions must be zero. On top of that,
 * every detection tier present in @p baseline must keep its recovered
 * fraction within @p tolerance of the baseline value, and a tier
 * missing from the current aggregate fails the gate.
 */
RegressionReport compareRasCoverage(const JsonValue &current,
                                    const JsonValue &baseline,
                                    double tolerance);

/**
 * Full CLI (driver / worker / compare modes); see tools/sweep.cc for
 * usage. Exposed so the test binary can exec itself as a real driver or
 * worker process. Exit codes: 0 ok, 1 regression, 2 usage/IO error,
 * 3 sweep degraded (quarantined runs).
 */
int sweepCliEntry(int argc, char **argv);

} // namespace bfsim

#endif // BFSIM_SYS_SWEEP_HH
