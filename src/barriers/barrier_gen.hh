/**
 * @file
 * Barrier runtime library: emits the per-mechanism instruction sequences
 * into a thread's program.
 *
 * The filter sequences follow Section 3.4 exactly; all instructions they
 * use exist on PowerPC-class ISAs (fence/sync, icbi, dcbi, isync), so no
 * core modification is implied. The software sequences implement the
 * paper's comparison points: a centralized sense-reversal barrier on
 * LL/SC with counter and release flag on separate cache lines, and a
 * binary combining (tournament) tree of pairwise sense-reversal barriers.
 * The dedicated-network baseline emits the `hbar` instruction.
 */

#ifndef BFSIM_BARRIERS_BARRIER_GEN_HH
#define BFSIM_BARRIERS_BARRIER_GEN_HH

#include <string>

#include "isa/builder.hh"
#include "os/os.hh"

namespace bfsim
{

/**
 * Emits barrier code for one thread against one registered barrier.
 *
 * Reserved registers (kernel code must stay below regBarrierFirst):
 *   x26, x27  barrier addresses (arrival/exit, or ping-pong pair)
 *   x28       local sense / toggle state
 *   x29, x30  scratch
 *   x31       return address for I-cache arrival blocks
 */
class BarrierCodegen
{
  public:
    /**
     * @param handle Registered barrier (drives the granted mechanism).
     * @param slot This thread's slot within the barrier [0, numThreads).
     */
    BarrierCodegen(const BarrierHandle &handle, unsigned slot);

    /** Emit one-time setup (register initialization). Call at entry. */
    void emitInit(ProgramBuilder &b);

    /** Inline one barrier invocation at the current emission point. */
    void emitBarrier(ProgramBuilder &b);

    /**
     * Emit this thread's arrival code blocks (I-cache kinds only; no-op
     * otherwise). Call once, after the main code, since it switches
     * sections.
     */
    void emitArrivalSections(ProgramBuilder &b);

    /** The mechanism actually granted by the OS. */
    BarrierKind kind() const { return handle.granted; }

    static constexpr IntReg rAddrA{26};
    static constexpr IntReg rAddrB{27};
    static constexpr IntReg rSense{28};
    static constexpr IntReg rScratch1{29};
    static constexpr IntReg rScratch2{30};

  private:
    std::string uniq(const char *tag);

    void emitSwCentral(ProgramBuilder &b);
    void emitSwFallback(ProgramBuilder &b);
    void emitSwTree(ProgramBuilder &b);
    void emitHwNetwork(ProgramBuilder &b);
    void emitFilterDCache(ProgramBuilder &b, bool pingPong);
    void emitFilterICache(ProgramBuilder &b, bool pingPong);
    void emitSwapAddrRegs(ProgramBuilder &b);

    const BarrierHandle &handle;
    unsigned slot;
    unsigned invocation = 0;
};

} // namespace bfsim

#endif // BFSIM_BARRIERS_BARRIER_GEN_HH
