/**
 * @file
 * BarrierCodegen implementation.
 */

#include "barriers/barrier_gen.hh"

#include <sstream>

#include "sim/log.hh"

namespace bfsim
{

BarrierCodegen::BarrierCodegen(const BarrierHandle &h, unsigned slot_)
    : handle(h), slot(slot_)
{
    if (slot >= handle.slotCapacity())
        fatal("BarrierCodegen: slot out of range");
}

std::string
BarrierCodegen::uniq(const char *tag)
{
    std::ostringstream os;
    os << "__bar" << slot << "_" << invocation << "_" << tag;
    return os.str();
}

void
BarrierCodegen::emitInit(ProgramBuilder &b)
{
    switch (handle.granted) {
      case BarrierKind::SwCentral:
        b.li(rAddrA, int64_t(handle.counterAddr));
        b.li(rAddrB, int64_t(handle.flagAddr));
        b.li(rSense, 0);
        break;
      case BarrierKind::SwTree:
        b.li(rSense, 0);
        break;
      case BarrierKind::HwNetwork:
        break;
      case BarrierKind::FilterICache:
      case BarrierKind::FilterDCache:
        b.li(rAddrA, int64_t(handle.arrivalAddr(0, slot)));
        b.li(rAddrB, int64_t(handle.exitAddr(0, slot)));
        break;
      case BarrierKind::FilterICachePP:
      case BarrierKind::FilterDCachePP:
        b.li(rAddrA, int64_t(handle.arrivalAddr(0, slot)));
        b.li(rAddrB, int64_t(handle.arrivalAddr(1, slot)));
        break;
    }
    if (isFilterKind(handle.granted) && handle.modeAddr != 0) {
        // The software fallback is sense-reversal; every thread must
        // start from the same sense for the degraded epochs to line up.
        b.li(rSense, 0);
    }
}

void
BarrierCodegen::emitBarrier(ProgramBuilder &b)
{
    // Recovery-enabled filter barriers get a guard prologue: load the
    // mode word (read at issue, so an OS flip is visible immediately) and
    // branch to an inline software fallback once the filter is poisoned.
    const bool guarded =
        isFilterKind(handle.granted) && handle.modeAddr != 0;
    const Addr spanBegin = b.here();
    std::string swLabel, doneLabel;
    if (guarded) {
        swLabel = uniq("sw");
        doneLabel = uniq("hwdone");
        b.li(rScratch1, int64_t(handle.modeAddr));
        b.ld(rScratch2, rScratch1, 0);
        b.bnez(rScratch2, swLabel);
    }

    switch (handle.granted) {
      case BarrierKind::SwCentral:
        emitSwCentral(b);
        break;
      case BarrierKind::SwTree:
        emitSwTree(b);
        break;
      case BarrierKind::HwNetwork:
        emitHwNetwork(b);
        break;
      case BarrierKind::FilterICache:
        emitFilterICache(b, false);
        break;
      case BarrierKind::FilterICachePP:
        emitFilterICache(b, true);
        break;
      case BarrierKind::FilterDCache:
        emitFilterDCache(b, false);
        break;
      case BarrierKind::FilterDCachePP:
        emitFilterDCache(b, true);
        break;
    }

    if (guarded) {
        b.j(doneLabel);
        b.label(swLabel);
        emitSwFallback(b);
        b.label(doneLabel);
        handle.owner->registerRecoverySpan(spanBegin, b.here(),
                                           handle.recoveryId);
    }
    ++invocation;
}

// ----- software centralized (sense reversal, LL/SC) ---------------------------

void
BarrierCodegen::emitSwCentral(ProgramBuilder &b)
{
    const std::string retry = uniq("retry");
    const std::string wait = uniq("wait");
    const std::string done = uniq("done");

    b.fence();
    b.xori(rSense, rSense, 1);
    b.label(retry);
    b.ll(rScratch1, rAddrA, 0);
    b.addi(rScratch1, rScratch1, 1);
    b.sc(rScratch2, rScratch1, rAddrA, 0);
    b.beqz(rScratch2, retry);
    b.li(rScratch2, int64_t(handle.numThreads));
    b.bne(rScratch1, rScratch2, wait);
    // Last arrival: reset the counter, then flip the release flag.
    b.sd(regZero, rAddrA, 0);
    b.sd(rSense, rAddrB, 0);
    b.j(done);
    b.label(wait);
    b.ld(rScratch2, rAddrB, 0);
    b.bne(rScratch2, rSense, wait);
    b.label(done);
}

// ----- software fallback for a degraded filter barrier ------------------------
//
// Same sense-reversal scheme as emitSwCentral, but on the handle's
// dedicated fallback counter/flag lines and using only x29-x31 (the
// barrier address registers keep their filter contents in case the jump
// to the fallback is never taken again).

void
BarrierCodegen::emitSwFallback(ProgramBuilder &b)
{
    const std::string retry = uniq("fbretry");
    const std::string wait = uniq("fbwait");
    const std::string spin = uniq("fbspin");
    const std::string done = uniq("fbdone");

    b.fence();
    b.xori(rSense, rSense, 1);
    if (handle.progressBase) {
        // Odd while inside the invocation, even outside: the OS core-loss
        // repair reads these per-slot cells to find the quiescent point
        // of an epoch stuck on a dead member's arrival.
        b.li(rScratch1, int64_t(handle.progressAddr(slot)));
        b.ld(rScratch2, rScratch1, 0);
        b.addi(rScratch2, rScratch2, 1);
        b.sd(rScratch2, rScratch1, 0);
    }
    b.label(retry);
    b.li(rScratch1, int64_t(handle.fbCounterAddr));
    b.ll(rScratch2, rScratch1, 0);
    b.addi(rScratch2, rScratch2, 1);
    b.sc(regRa, rScratch2, rScratch1, 0);
    b.beqz(regRa, retry);
    if (handle.memberCountAddr) {
        // The arrival target comes from the OS-owned count cell, re-read
        // at every arrival, so membership commits and core-loss repair
        // reach the software path without re-emitting code.
        b.li(regRa, int64_t(handle.memberCountAddr));
        b.ld(regRa, regRa, 0);
    } else {
        b.li(regRa, int64_t(handle.numThreads));
    }
    b.bne(rScratch2, regRa, wait);
    // Last arrival: reset the counter, then flip the release flag.
    b.sd(regZero, rScratch1, 0);
    b.li(rScratch1, int64_t(handle.fbFlagAddr));
    b.sd(rSense, rScratch1, 0);
    b.j(done);
    b.label(wait);
    b.li(rScratch1, int64_t(handle.fbFlagAddr));
    b.label(spin);
    b.ld(rScratch2, rScratch1, 0);
    b.bne(rScratch2, rSense, spin);
    b.label(done);
    if (handle.progressBase) {
        b.li(rScratch1, int64_t(handle.progressAddr(slot)));
        b.ld(rScratch2, rScratch1, 0);
        b.addi(rScratch2, rScratch2, 1);
        b.sd(rScratch2, rScratch1, 0);
    }
}

// ----- software combining tree (tournament, sense reversal) ----------------------

void
BarrierCodegen::emitSwTree(ProgramBuilder &b)
{
    const unsigned t = slot;
    const unsigned n = handle.numThreads;
    const unsigned levels = handle.treeLevels;

    b.fence();
    b.xori(rSense, rSense, 1);

    // Ascend: win levels until losing (or winning the whole tree).
    unsigned lostAt = levels;
    for (unsigned l = 0; l < levels; ++l) {
        const unsigned groupSize = 1u << (l + 1);
        const unsigned half = 1u << l;
        if (t % groupSize == 0) {
            const unsigned partner = t + half;
            if (partner < n) {
                // Winner: wait for the partner's arrival flag.
                const std::string spin = uniq(("arr" +
                                               std::to_string(l)).c_str());
                b.li(rScratch1, int64_t(handle.treeArriveAddr(l, t)));
                b.label(spin);
                b.ld(rScratch2, rScratch1, 0);
                b.bne(rScratch2, rSense, spin);
            }
            // else: bye — ascend for free.
        } else {
            // Loser: signal the winner, then wait for release.
            const unsigned winner = t - half;
            b.li(rScratch1, int64_t(handle.treeArriveAddr(l, winner)));
            b.sd(rSense, rScratch1, 0);
            const std::string spin = uniq(("rel" +
                                           std::to_string(l)).c_str());
            b.li(rScratch1, int64_t(handle.treeReleaseAddr(l, winner)));
            b.label(spin);
            b.ld(rScratch2, rScratch1, 0);
            b.bne(rScratch2, rSense, spin);
            lostAt = l;
            break;
        }
    }

    // Descend: release every pairing this thread won below its exit level.
    for (int l = int(lostAt) - 1; l >= 0; --l) {
        const unsigned half = 1u << unsigned(l);
        if (t % (half * 2) == 0 && t + half < n) {
            b.li(rScratch1, int64_t(handle.treeReleaseAddr(unsigned(l), t)));
            b.sd(rSense, rScratch1, 0);
        }
    }
}

// ----- dedicated hardware network baseline ------------------------------------------

void
BarrierCodegen::emitHwNetwork(ProgramBuilder &b)
{
    b.fence();
    b.hbar(handle.networkId);
}

// ----- barrier filter, D-cache variant (Section 3.4.2) --------------------------------

void
BarrierCodegen::emitSwapAddrRegs(ProgramBuilder &b)
{
    b.mov(rScratch1, rAddrA);
    b.mov(rAddrA, rAddrB);
    b.mov(rAddrB, rScratch1);
}

void
BarrierCodegen::emitFilterDCache(ProgramBuilder &b, bool pingPong)
{
    b.fence();                 // make prior work globally visible
    b.dcbi(rAddrA, 0);         // arrival: invalidate own arrival line
    b.ld(rScratch2, rAddrA, 0); // fill request the filter starves
    b.fence();                 // nothing may pass until the fill completes
    if (pingPong) {
        // This arrival doubles as the previous barrier's exit; just flip
        // which address the next invocation uses (Section 3.5).
        emitSwapAddrRegs(b);
    } else {
        b.dcbi(rAddrB, 0);     // exit: re-arm our filter slot
    }
}

// ----- barrier filter, I-cache variant (Section 3.4.1) -----------------------------------

void
BarrierCodegen::emitFilterICache(ProgramBuilder &b, bool pingPong)
{
    b.fence();                 // make prior work globally visible
    b.icbi(rAddrA, 0);         // arrival: invalidate own arrival code block
    b.isync();                 // discard fetched/prefetched instructions
    b.jalr(regRa, rAddrA);     // fetch stalls until the filter releases
    if (pingPong)
        emitSwapAddrRegs(b);
}

void
BarrierCodegen::emitArrivalSections(ProgramBuilder &b)
{
    switch (handle.granted) {
      case BarrierKind::FilterICache:
        // Arrival block: invalidate the exit line, then return.
        b.beginSection(handle.arrivalAddr(0, slot));
        b.dcbi(rAddrB, 0);
        b.ret();
        break;
      case BarrierKind::FilterICachePP:
        // Ping-pong arrival blocks contain only a return: entering the
        // other barrier is what exits this one.
        b.beginSection(handle.arrivalAddr(0, slot));
        b.ret();
        b.beginSection(handle.arrivalAddr(1, slot));
        b.ret();
        break;
      default:
        break;
    }
}

} // namespace bfsim
