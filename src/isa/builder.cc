/**
 * @file
 * ProgramBuilder implementation.
 */

#include "isa/builder.hh"

#include "sim/log.hh"

namespace bfsim
{

ProgramBuilder::ProgramBuilder(Addr base)
{
    beginSection(base);
}

void
ProgramBuilder::beginSection(Addr base)
{
    if (base % instBytes != 0)
        fatal("ProgramBuilder: section base must be instruction-aligned");
    for (size_t i = 0; i < secs.size(); ++i) {
        if (secs[i].base == base) {
            curSec = i;
            return;
        }
    }
    secs.push_back(CodeSection{base, {}});
    curSec = secs.size() - 1;
}

void
ProgramBuilder::label(const std::string &name)
{
    if (labels.count(name))
        fatal("ProgramBuilder: duplicate label '" + name + "'");
    labels[name] = here();
}

Addr
ProgramBuilder::here() const
{
    const CodeSection &s = secs[curSec];
    return s.base + s.insts.size() * instBytes;
}

IntReg
ProgramBuilder::temp()
{
    if (nextTemp >= regBarrierFirst)
        fatal("ProgramBuilder: out of scratch integer registers");
    return IntReg{nextTemp++};
}

FpReg
ProgramBuilder::ftemp()
{
    if (nextFtemp >= numFpRegs)
        fatal("ProgramBuilder: out of scratch fp registers");
    return FpReg{nextFtemp++};
}

void
ProgramBuilder::emit(Instruction inst)
{
    if (built)
        panic("ProgramBuilder: emit after build()");
    secs[curSec].insts.push_back(inst);
}

// ----- integer ALU ----------------------------------------------------------

#define BF_RRR(NAME, OP)                                                    \
    void ProgramBuilder::NAME(IntReg rd, IntReg rs1, IntReg rs2)            \
    { emit({Opcode::OP, rd.idx, rs1.idx, rs2.idx, 0}); }

BF_RRR(add, Add)
BF_RRR(sub, Sub)
BF_RRR(mul, Mul)
BF_RRR(div, Div)
BF_RRR(rem, Rem)
BF_RRR(and_, And)
BF_RRR(or_, Or)
BF_RRR(xor_, Xor)
BF_RRR(sll, Sll)
BF_RRR(srl, Srl)
BF_RRR(sra, Sra)
BF_RRR(slt, Slt)
BF_RRR(sltu, Sltu)
#undef BF_RRR

#define BF_RRI(NAME, OP)                                                    \
    void ProgramBuilder::NAME(IntReg rd, IntReg rs1, int64_t imm)           \
    { emit({Opcode::OP, rd.idx, rs1.idx, 0, imm}); }

BF_RRI(addi, Addi)
BF_RRI(andi, Andi)
BF_RRI(ori, Ori)
BF_RRI(xori, Xori)
BF_RRI(slli, Slli)
BF_RRI(srli, Srli)
BF_RRI(srai, Srai)
BF_RRI(slti, Slti)
#undef BF_RRI

void
ProgramBuilder::li(IntReg rd, int64_t imm)
{
    emit({Opcode::Li, rd.idx, 0, 0, imm});
}

void
ProgramBuilder::nop()
{
    emit({Opcode::Nop, 0, 0, 0, 0});
}

// ----- floating point --------------------------------------------------------

#define BF_FFF(NAME, OP)                                                    \
    void ProgramBuilder::NAME(FpReg rd, FpReg rs1, FpReg rs2)               \
    { emit({Opcode::OP, rd.idx, rs1.idx, rs2.idx, 0}); }

BF_FFF(fadd, Fadd)
BF_FFF(fsub, Fsub)
BF_FFF(fmul, Fmul)
BF_FFF(fdiv, Fdiv)
#undef BF_FFF

void
ProgramBuilder::fneg(FpReg rd, FpReg rs1)
{
    emit({Opcode::Fneg, rd.idx, rs1.idx, 0, 0});
}

void
ProgramBuilder::fabs_(FpReg rd, FpReg rs1)
{
    emit({Opcode::Fabs, rd.idx, rs1.idx, 0, 0});
}

void
ProgramBuilder::fmov(FpReg rd, FpReg rs1)
{
    emit({Opcode::Fmov, rd.idx, rs1.idx, 0, 0});
}

void
ProgramBuilder::cvtIF(FpReg rd, IntReg rs1)
{
    emit({Opcode::CvtIF, rd.idx, rs1.idx, 0, 0});
}

void
ProgramBuilder::cvtFI(IntReg rd, FpReg rs1)
{
    emit({Opcode::CvtFI, rd.idx, rs1.idx, 0, 0});
}

void
ProgramBuilder::flt(IntReg rd, FpReg rs1, FpReg rs2)
{
    emit({Opcode::Flt, rd.idx, rs1.idx, rs2.idx, 0});
}

void
ProgramBuilder::fle(IntReg rd, FpReg rs1, FpReg rs2)
{
    emit({Opcode::Fle, rd.idx, rs1.idx, rs2.idx, 0});
}

void
ProgramBuilder::feq(IntReg rd, FpReg rs1, FpReg rs2)
{
    emit({Opcode::Feq, rd.idx, rs1.idx, rs2.idx, 0});
}

// ----- memory ------------------------------------------------------------------

void
ProgramBuilder::lb(IntReg rd, IntReg base, int64_t off)
{
    emit({Opcode::Lb, rd.idx, base.idx, 0, off});
}

void
ProgramBuilder::lw(IntReg rd, IntReg base, int64_t off)
{
    emit({Opcode::Lw, rd.idx, base.idx, 0, off});
}

void
ProgramBuilder::ld(IntReg rd, IntReg base, int64_t off)
{
    emit({Opcode::Ld, rd.idx, base.idx, 0, off});
}

void
ProgramBuilder::sb(IntReg src, IntReg base, int64_t off)
{
    emit({Opcode::Sb, 0, base.idx, src.idx, off});
}

void
ProgramBuilder::sw(IntReg src, IntReg base, int64_t off)
{
    emit({Opcode::Sw, 0, base.idx, src.idx, off});
}

void
ProgramBuilder::sd(IntReg src, IntReg base, int64_t off)
{
    emit({Opcode::Sd, 0, base.idx, src.idx, off});
}

void
ProgramBuilder::fld(FpReg rd, IntReg base, int64_t off)
{
    emit({Opcode::Fld, rd.idx, base.idx, 0, off});
}

void
ProgramBuilder::fsd(FpReg src, IntReg base, int64_t off)
{
    emit({Opcode::Fsd, 0, base.idx, src.idx, off});
}

void
ProgramBuilder::ll(IntReg rd, IntReg base, int64_t off)
{
    emit({Opcode::Ll, rd.idx, base.idx, 0, off});
}

void
ProgramBuilder::sc(IntReg rd, IntReg src, IntReg base, int64_t off)
{
    emit({Opcode::Sc, rd.idx, base.idx, src.idx, off});
}

// ----- control -------------------------------------------------------------------

void
ProgramBuilder::branchTo(Opcode op, IntReg a, IntReg b,
                         const std::string &target)
{
    fixups.push_back(Fixup{curSec, secs[curSec].insts.size(), target});
    emit({op, 0, a.idx, b.idx, 0});
}

void
ProgramBuilder::beq(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Beq, a, b, t);
}

void
ProgramBuilder::bne(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Bne, a, b, t);
}

void
ProgramBuilder::blt(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Blt, a, b, t);
}

void
ProgramBuilder::bge(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Bge, a, b, t);
}

void
ProgramBuilder::bltu(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Bltu, a, b, t);
}

void
ProgramBuilder::bgeu(IntReg a, IntReg b, const std::string &t)
{
    branchTo(Opcode::Bgeu, a, b, t);
}

void
ProgramBuilder::j(const std::string &target)
{
    fixups.push_back(Fixup{curSec, secs[curSec].insts.size(), target});
    emit({Opcode::J, 0, 0, 0, 0});
}

void
ProgramBuilder::jal(IntReg link, const std::string &target)
{
    fixups.push_back(Fixup{curSec, secs[curSec].insts.size(), target});
    emit({Opcode::Jal, link.idx, 0, 0, 0});
}

void
ProgramBuilder::jalAbs(IntReg link, Addr target)
{
    emit({Opcode::Jal, link.idx, 0, 0, int64_t(target)});
}

void
ProgramBuilder::jAbs(Addr target)
{
    emit({Opcode::J, 0, 0, 0, int64_t(target)});
}

void
ProgramBuilder::jalr(IntReg link, IntReg target)
{
    emit({Opcode::Jalr, link.idx, target.idx, 0, 0});
}

void
ProgramBuilder::jr(IntReg rs1)
{
    emit({Opcode::Jr, 0, rs1.idx, 0, 0});
}

void
ProgramBuilder::halt()
{
    emit({Opcode::Halt, 0, 0, 0, 0});
}

// ----- synchronization --------------------------------------------------------------

void
ProgramBuilder::fence()
{
    emit({Opcode::Fence, 0, 0, 0, 0});
}

void
ProgramBuilder::icbi(IntReg base, int64_t off)
{
    emit({Opcode::Icbi, 0, base.idx, 0, off});
}

void
ProgramBuilder::dcbi(IntReg base, int64_t off)
{
    emit({Opcode::Dcbi, 0, base.idx, 0, off});
}

void
ProgramBuilder::isync()
{
    emit({Opcode::Isync, 0, 0, 0, 0});
}

void
ProgramBuilder::hbar(int64_t networkBarrierId)
{
    emit({Opcode::Hbar, 0, 0, 0, networkBarrierId});
}

// ----- finalization ----------------------------------------------------------------

ProgramPtr
ProgramBuilder::build(const std::string &entry)
{
    for (const Fixup &f : fixups) {
        auto it = labels.find(f.label);
        if (it == labels.end())
            fatal("ProgramBuilder: undefined label '" + f.label + "'");
        secs[f.section].insts[f.index].imm = int64_t(it->second);
    }

    Addr entryAddr;
    if (entry.empty()) {
        entryAddr = secs.front().base;
    } else {
        auto it = labels.find(entry);
        if (it == labels.end())
            fatal("ProgramBuilder: undefined entry label '" + entry + "'");
        entryAddr = it->second;
    }

    built = true;
    return std::make_shared<Program>(secs, entryAddr);
}

size_t
ProgramBuilder::emittedCount() const
{
    size_t n = 0;
    for (const auto &s : secs)
        n += s.insts.size();
    return n;
}

} // namespace bfsim
