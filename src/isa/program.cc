/**
 * @file
 * Program implementation.
 */

#include "isa/program.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace bfsim
{

Program::Program(std::vector<CodeSection> sections, Addr entry)
    : secs(std::move(sections)), entryAddr(entry)
{
    std::sort(secs.begin(), secs.end(),
              [](const CodeSection &a, const CodeSection &b) {
                  return a.base < b.base;
              });
    for (size_t i = 0; i + 1 < secs.size(); ++i) {
        if (secs[i].limit() > secs[i + 1].base)
            fatal("Program: overlapping code sections");
    }
    if (!contains(entryAddr))
        fatal("Program: entry point outside all sections");
}

bool
Program::contains(Addr pc) const
{
    for (const auto &s : secs)
        if (pc >= s.base && pc < s.limit())
            return true;
    return false;
}

const Instruction &
Program::fetch(Addr pc) const
{
    if (pc % instBytes != 0)
        fatal("Program: misaligned fetch");

    // Fast path: the same section as last time.
    const CodeSection &ls = secs[lastSec];
    if (pc >= ls.base && pc < ls.limit())
        return ls.insts[(pc - ls.base) / instBytes];

    for (size_t i = 0; i < secs.size(); ++i) {
        const CodeSection &s = secs[i];
        if (pc >= s.base && pc < s.limit()) {
            lastSec = i;
            return s.insts[(pc - s.base) / instBytes];
        }
    }
    std::ostringstream os;
    os << "Program: fetch outside image at 0x" << std::hex << pc;
    fatal(os.str());
}

size_t
Program::size() const
{
    size_t n = 0;
    for (const auto &s : secs)
        n += s.insts.size();
    return n;
}

std::string
Program::listing() const
{
    std::ostringstream os;
    for (const auto &s : secs) {
        os << "section @ 0x" << std::hex << s.base << std::dec << ":\n";
        Addr pc = s.base;
        for (const auto &inst : s.insts) {
            os << "  0x" << std::hex << std::setw(8) << std::setfill('0')
               << pc << std::dec << ":  " << disassemble(inst) << "\n";
            pc += instBytes;
        }
    }
    return os.str();
}

} // namespace bfsim
