/**
 * @file
 * Interpreter implementation. Semantics must match cpu/core.cc exactly;
 * the differential fuzz test in tests/test_fuzz.cc enforces that.
 */

#include "isa/interpreter.hh"

#include <bit>
#include <cstring>

#include "sim/log.hh"

namespace bfsim
{

Interpreter::Interpreter(ProgramPtr program)
    : prog(std::move(program)), pcReg(prog->entry())
{
}

uint8_t
Interpreter::read8(Addr a) const
{
    auto it = memBytes.find(a);
    return it == memBytes.end() ? 0 : it->second;
}

void
Interpreter::write8(Addr a, uint8_t v)
{
    memBytes[a] = v;
}

void
Interpreter::readBlock(Addr a, void *dst, size_t len) const
{
    auto *out = static_cast<uint8_t *>(dst);
    for (size_t i = 0; i < len; ++i)
        out[i] = read8(a + i);
}

void
Interpreter::writeBlock(Addr a, const void *src, size_t len)
{
    const auto *in = static_cast<const uint8_t *>(src);
    for (size_t i = 0; i < len; ++i)
        write8(a + i, in[i]);
}

uint64_t
Interpreter::read64(Addr a) const
{
    uint64_t v;
    readBlock(a, &v, 8);
    return v;
}

void
Interpreter::write64(Addr a, uint64_t v)
{
    writeBlock(a, &v, 8);
}

int64_t
Interpreter::loadValue(Opcode op, Addr ea) const
{
    switch (op) {
      case Opcode::Lb: return int64_t(int8_t(read8(ea)));
      case Opcode::Lw: {
        uint32_t v;
        readBlock(ea, &v, 4);
        return int64_t(int32_t(v));
      }
      default: return int64_t(read64(ea));
    }
}

bool
Interpreter::run(uint64_t maxInsts)
{
    while (!isHalted && executed < maxInsts)
        step();
    return isHalted;
}

void
Interpreter::step()
{
    if (isHalted)
        return;

    const Instruction &inst = prog->fetch(pcReg);
    auto &ir = intRegs;
    auto &fr = fpRegs;
    const auto rs1 = inst.rs1;
    const auto rs2 = inst.rs2;
    const auto rd = inst.rd;
    const int64_t imm = inst.imm;
    ++executed;

    auto setI = [&](int64_t v) {
        if (rd != 0)
            ir[rd] = v;
    };
    auto setF = [&](double v) { fr[rd] = v; };
    Addr next = pcReg + instBytes;

    switch (inst.op) {
      case Opcode::Add: setI(ir[rs1] + ir[rs2]); break;
      case Opcode::Sub: setI(ir[rs1] - ir[rs2]); break;
      case Opcode::Mul: setI(ir[rs1] * ir[rs2]); break;
      case Opcode::Div: {
        int64_t b = ir[rs2];
        setI(b == 0 ? 0
             : (ir[rs1] == INT64_MIN && b == -1) ? ir[rs1]
             : ir[rs1] / b);
        break;
      }
      case Opcode::Rem: {
        int64_t b = ir[rs2];
        setI(b == 0 ? ir[rs1]
             : (ir[rs1] == INT64_MIN && b == -1) ? 0
             : ir[rs1] % b);
        break;
      }
      case Opcode::And: setI(ir[rs1] & ir[rs2]); break;
      case Opcode::Or: setI(ir[rs1] | ir[rs2]); break;
      case Opcode::Xor: setI(ir[rs1] ^ ir[rs2]); break;
      case Opcode::Sll: setI(ir[rs1] << (ir[rs2] & 63)); break;
      case Opcode::Srl:
        setI(int64_t(uint64_t(ir[rs1]) >> (ir[rs2] & 63)));
        break;
      case Opcode::Sra: setI(ir[rs1] >> (ir[rs2] & 63)); break;
      case Opcode::Slt: setI(ir[rs1] < ir[rs2]); break;
      case Opcode::Sltu: setI(uint64_t(ir[rs1]) < uint64_t(ir[rs2])); break;
      case Opcode::Addi: setI(ir[rs1] + imm); break;
      case Opcode::Andi: setI(ir[rs1] & imm); break;
      case Opcode::Ori: setI(ir[rs1] | imm); break;
      case Opcode::Xori: setI(ir[rs1] ^ imm); break;
      case Opcode::Slli: setI(ir[rs1] << (imm & 63)); break;
      case Opcode::Srli:
        setI(int64_t(uint64_t(ir[rs1]) >> (imm & 63)));
        break;
      case Opcode::Srai: setI(ir[rs1] >> (imm & 63)); break;
      case Opcode::Slti: setI(ir[rs1] < imm); break;
      case Opcode::Li: setI(imm); break;
      case Opcode::Nop: break;

      case Opcode::Fadd: setF(fr[rs1] + fr[rs2]); break;
      case Opcode::Fsub: setF(fr[rs1] - fr[rs2]); break;
      case Opcode::Fmul: setF(fr[rs1] * fr[rs2]); break;
      case Opcode::Fdiv: setF(fr[rs1] / fr[rs2]); break;
      case Opcode::Fneg: setF(-fr[rs1]); break;
      case Opcode::Fabs: setF(fr[rs1] < 0 ? -fr[rs1] : fr[rs1]); break;
      case Opcode::Fmov: setF(fr[rs1]); break;
      case Opcode::CvtIF: setF(double(ir[rs1])); break;
      case Opcode::CvtFI: setI(int64_t(fr[rs1])); break;
      case Opcode::Flt: setI(fr[rs1] < fr[rs2]); break;
      case Opcode::Fle: setI(fr[rs1] <= fr[rs2]); break;
      case Opcode::Feq: setI(fr[rs1] == fr[rs2]); break;

      case Opcode::Lb:
      case Opcode::Lw:
      case Opcode::Ld:
        setI(loadValue(inst.op, Addr(ir[rs1] + imm)));
        break;
      case Opcode::Fld: {
        uint64_t raw = read64(Addr(ir[rs1] + imm));
        setF(std::bit_cast<double>(raw));
        break;
      }
      case Opcode::Ll: {
        Addr ea = Addr(ir[rs1] + imm);
        setI(int64_t(read64(ea)));
        linkValid = true;
        linkLine = ea & ~Addr(63);
        break;
      }
      case Opcode::Sb:
        write8(Addr(ir[rs1] + imm), uint8_t(ir[rs2]));
        break;
      case Opcode::Sw: {
        uint32_t v = uint32_t(ir[rs2]);
        writeBlock(Addr(ir[rs1] + imm), &v, 4);
        break;
      }
      case Opcode::Sd:
        write64(Addr(ir[rs1] + imm), uint64_t(ir[rs2]));
        break;
      case Opcode::Fsd:
        write64(Addr(ir[rs1] + imm), std::bit_cast<uint64_t>(fr[rs2]));
        break;
      case Opcode::Sc: {
        Addr ea = Addr(ir[rs1] + imm);
        bool ok = linkValid && linkLine == (ea & ~Addr(63));
        if (ok)
            write64(ea, uint64_t(ir[rs2]));
        linkValid = false;
        setI(ok ? 1 : 0);
        break;
      }

      case Opcode::Beq: if (ir[rs1] == ir[rs2]) next = Addr(imm); break;
      case Opcode::Bne: if (ir[rs1] != ir[rs2]) next = Addr(imm); break;
      case Opcode::Blt: if (ir[rs1] < ir[rs2]) next = Addr(imm); break;
      case Opcode::Bge: if (ir[rs1] >= ir[rs2]) next = Addr(imm); break;
      case Opcode::Bltu:
        if (uint64_t(ir[rs1]) < uint64_t(ir[rs2]))
            next = Addr(imm);
        break;
      case Opcode::Bgeu:
        if (uint64_t(ir[rs1]) >= uint64_t(ir[rs2]))
            next = Addr(imm);
        break;
      case Opcode::J: next = Addr(imm); break;
      case Opcode::Jal:
        setI(int64_t(pcReg + instBytes));
        next = Addr(imm);
        break;
      case Opcode::Jalr: {
        Addr target = Addr(ir[rs1]);
        setI(int64_t(pcReg + instBytes));
        next = target;
        break;
      }
      case Opcode::Jr: next = Addr(ir[rs1]); break;
      case Opcode::Halt: isHalted = true; return;

      // Cache control / ordering: functionally transparent here.
      case Opcode::Fence:
      case Opcode::Isync:
        break;
      case Opcode::Icbi:
      case Opcode::Dcbi:
        break;
      case Opcode::Hbar:
        fatal("Interpreter: hbar needs a multi-core substrate");
      default:
        panic("Interpreter: unhandled opcode");
    }

    pcReg = next;
}

} // namespace bfsim
