/**
 * @file
 * Golden-model functional interpreter for the ISA.
 *
 * Executes a Program instantly (no timing, no memory hierarchy) against a
 * sparse byte memory. Used as the reference in differential tests: any
 * single-threaded program must leave identical architectural state in the
 * timing simulator and here.
 */

#ifndef BFSIM_ISA_INTERPRETER_HH
#define BFSIM_ISA_INTERPRETER_HH

#include <array>
#include <unordered_map>

#include "isa/program.hh"

namespace bfsim
{

/**
 * Reference interpreter: architectural state only.
 */
class Interpreter
{
  public:
    explicit Interpreter(ProgramPtr program);

    /** Direct access to architectural state. */
    std::array<int64_t, numIntRegs> &iregs() { return intRegs; }
    std::array<double, numFpRegs> &fregs() { return fpRegs; }
    Addr pc() const { return pcReg; }
    bool halted() const { return isHalted; }
    uint64_t instructionsExecuted() const { return executed; }

    // Sparse functional memory.
    uint8_t read8(Addr a) const;
    uint64_t read64(Addr a) const;
    void write8(Addr a, uint8_t v);
    void write64(Addr a, uint64_t v);
    void readBlock(Addr a, void *dst, size_t len) const;
    void writeBlock(Addr a, const void *src, size_t len);

    /**
     * Run until halt or @p maxInsts instructions.
     * @return true when the program halted.
     * @throws FatalError on a fetch outside the program image, or on
     *         instructions that need a multi-core substrate (hbar).
     */
    bool run(uint64_t maxInsts = 1'000'000);

    /** Execute exactly one instruction (no-op once halted). */
    void step();

  private:
    int64_t loadValue(Opcode op, Addr ea) const;

    ProgramPtr prog;
    std::array<int64_t, numIntRegs> intRegs{};
    std::array<double, numFpRegs> fpRegs{};
    Addr pcReg;
    bool isHalted = false;
    uint64_t executed = 0;

    bool linkValid = false;
    Addr linkLine = 0;

    std::unordered_map<Addr, uint8_t> memBytes;
};

} // namespace bfsim

#endif // BFSIM_ISA_INTERPRETER_HH
