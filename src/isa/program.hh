/**
 * @file
 * Executable program images made of one or more code sections.
 *
 * A section is a contiguous run of instructions starting at a fixed byte
 * address. The I-cache barrier places per-thread "arrival" code blocks at
 * OS-assigned, cache-line-aligned addresses, so a program is generally a
 * main section plus several tiny barrier sections.
 */

#ifndef BFSIM_ISA_PROGRAM_HH
#define BFSIM_ISA_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace bfsim
{

/** A contiguous run of instructions at a fixed base address. */
struct CodeSection
{
    Addr base = 0;
    std::vector<Instruction> insts;

    Addr limit() const { return base + insts.size() * instBytes; }
};

/**
 * An immutable program image: sections plus an entry point.
 *
 * Instruction lookup by address is the core's fetch path, so it keeps a
 * small cache of the last section hit (fetch is overwhelmingly sequential).
 */
class Program
{
  public:
    Program(std::vector<CodeSection> sections, Addr entry);

    /** Entry-point address. */
    Addr entry() const { return entryAddr; }

    /** True when @p pc falls inside any section. */
    bool contains(Addr pc) const;

    /**
     * Fetch the instruction at @p pc.
     * @throws FatalError when @p pc is outside the image or misaligned.
     */
    const Instruction &fetch(Addr pc) const;

    const std::vector<CodeSection> &sections() const { return secs; }

    /** Total instruction count across all sections. */
    size_t size() const;

    /** Multi-line disassembly listing (for tests and debugging). */
    std::string listing() const;

  private:
    std::vector<CodeSection> secs;
    Addr entryAddr;
    mutable size_t lastSec = 0;
};

using ProgramPtr = std::shared_ptr<const Program>;

} // namespace bfsim

#endif // BFSIM_ISA_PROGRAM_HH
