/**
 * @file
 * ProgramBuilder: an embedded assembler for constructing Program images.
 *
 * Kernels and barrier runtimes are written against this eDSL. It supports
 * named labels with forward references, multiple code sections (needed for
 * I-cache barrier arrival blocks at OS-assigned addresses), and typed
 * integer/floating-point register handles.
 */

#ifndef BFSIM_ISA_BUILDER_HH
#define BFSIM_ISA_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace bfsim
{

/** Typed handle for an integer register. */
struct IntReg
{
    uint8_t idx = 0;
    constexpr explicit IntReg(unsigned i = 0) : idx(uint8_t(i)) {}
    constexpr bool operator==(const IntReg &o) const { return idx == o.idx; }
};

/** Typed handle for a floating-point register. */
struct FpReg
{
    uint8_t idx = 0;
    constexpr explicit FpReg(unsigned i = 0) : idx(uint8_t(i)) {}
};

/** x0 is hard-wired to zero. */
constexpr IntReg regZero{0};
/** Conventional link register used by jal/ret in generated code. */
constexpr IntReg regRa{31};

/**
 * Registers reserved for barrier runtime sequences. Kernel code must not
 * use registers >= regBarrierFirst so barrier code can be inlined anywhere.
 */
constexpr unsigned regBarrierFirst = 26;

/**
 * Incremental builder for Program images.
 *
 * Usage:
 * @code
 *   ProgramBuilder b(0x10000);
 *   IntReg i = b.temp();
 *   b.li(i, 0);
 *   b.label("loop");
 *   b.addi(i, i, 1);
 *   b.blt(i, n, "loop");
 *   b.halt();
 *   ProgramPtr p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Addr base);

    // ----- sections and labels -------------------------------------------

    /** Start (or resume) emitting at byte address @p base. */
    void beginSection(Addr base);

    /** Define @p name at the current emission address. */
    void label(const std::string &name);

    /** Address that the next emitted instruction will occupy. */
    Addr here() const;

    /** Allocate a scratch integer register (kernel range, ascending). */
    IntReg temp();

    /** Allocate a scratch floating-point register. */
    FpReg ftemp();

    // ----- integer ALU ----------------------------------------------------

    void add(IntReg rd, IntReg rs1, IntReg rs2);
    void sub(IntReg rd, IntReg rs1, IntReg rs2);
    void mul(IntReg rd, IntReg rs1, IntReg rs2);
    void div(IntReg rd, IntReg rs1, IntReg rs2);
    void rem(IntReg rd, IntReg rs1, IntReg rs2);
    void and_(IntReg rd, IntReg rs1, IntReg rs2);
    void or_(IntReg rd, IntReg rs1, IntReg rs2);
    void xor_(IntReg rd, IntReg rs1, IntReg rs2);
    void sll(IntReg rd, IntReg rs1, IntReg rs2);
    void srl(IntReg rd, IntReg rs1, IntReg rs2);
    void sra(IntReg rd, IntReg rs1, IntReg rs2);
    void slt(IntReg rd, IntReg rs1, IntReg rs2);
    void sltu(IntReg rd, IntReg rs1, IntReg rs2);

    void addi(IntReg rd, IntReg rs1, int64_t imm);
    void andi(IntReg rd, IntReg rs1, int64_t imm);
    void ori(IntReg rd, IntReg rs1, int64_t imm);
    void xori(IntReg rd, IntReg rs1, int64_t imm);
    void slli(IntReg rd, IntReg rs1, int64_t imm);
    void srli(IntReg rd, IntReg rs1, int64_t imm);
    void srai(IntReg rd, IntReg rs1, int64_t imm);
    void slti(IntReg rd, IntReg rs1, int64_t imm);

    void li(IntReg rd, int64_t imm);
    void mov(IntReg rd, IntReg rs1) { addi(rd, rs1, 0); }
    void nop();

    // ----- floating point --------------------------------------------------

    void fadd(FpReg rd, FpReg rs1, FpReg rs2);
    void fsub(FpReg rd, FpReg rs1, FpReg rs2);
    void fmul(FpReg rd, FpReg rs1, FpReg rs2);
    void fdiv(FpReg rd, FpReg rs1, FpReg rs2);
    void fneg(FpReg rd, FpReg rs1);
    void fabs_(FpReg rd, FpReg rs1);
    void fmov(FpReg rd, FpReg rs1);
    void cvtIF(FpReg rd, IntReg rs1);
    void cvtFI(IntReg rd, FpReg rs1);
    void flt(IntReg rd, FpReg rs1, FpReg rs2);
    void fle(IntReg rd, FpReg rs1, FpReg rs2);
    void feq(IntReg rd, FpReg rs1, FpReg rs2);

    // ----- memory -----------------------------------------------------------

    void lb(IntReg rd, IntReg base, int64_t off);
    void lw(IntReg rd, IntReg base, int64_t off);
    void ld(IntReg rd, IntReg base, int64_t off);
    void sb(IntReg src, IntReg base, int64_t off);
    void sw(IntReg src, IntReg base, int64_t off);
    void sd(IntReg src, IntReg base, int64_t off);
    void fld(FpReg rd, IntReg base, int64_t off);
    void fsd(FpReg src, IntReg base, int64_t off);
    void ll(IntReg rd, IntReg base, int64_t off);
    void sc(IntReg rd, IntReg src, IntReg base, int64_t off);

    // ----- control ----------------------------------------------------------

    void beq(IntReg a, IntReg b, const std::string &target);
    void bne(IntReg a, IntReg b, const std::string &target);
    void blt(IntReg a, IntReg b, const std::string &target);
    void bge(IntReg a, IntReg b, const std::string &target);
    void bltu(IntReg a, IntReg b, const std::string &target);
    void bgeu(IntReg a, IntReg b, const std::string &target);
    void beqz(IntReg a, const std::string &t) { beq(a, regZero, t); }
    void bnez(IntReg a, const std::string &t) { bne(a, regZero, t); }
    void j(const std::string &target);
    void jal(IntReg link, const std::string &target);
    void jalAbs(IntReg link, Addr target);
    void jAbs(Addr target);
    void jalr(IntReg link, IntReg target);
    void jr(IntReg rs1);
    void ret() { jr(regRa); }
    void halt();

    // ----- synchronization / cache control -----------------------------------

    void fence();
    void icbi(IntReg base, int64_t off);
    void dcbi(IntReg base, int64_t off);
    void isync();
    void hbar(int64_t networkBarrierId);

    // ----- finalization -------------------------------------------------------

    /**
     * Resolve labels and produce the immutable program.
     * @param entry Entry label; empty string means "start of first section".
     * @throws FatalError on undefined labels.
     */
    ProgramPtr build(const std::string &entry = "");

    /** Number of instructions emitted so far. */
    size_t emittedCount() const;

  private:
    struct Fixup
    {
        size_t section;
        size_t index;
        std::string label;
    };

    void emit(Instruction inst);
    void branchTo(Opcode op, IntReg a, IntReg b, const std::string &target);

    std::vector<CodeSection> secs;
    size_t curSec = 0;
    std::map<std::string, Addr> labels;
    std::vector<Fixup> fixups;
    unsigned nextTemp = 1;       // x0 is the zero register
    unsigned nextFtemp = 0;
    bool built = false;
};

} // namespace bfsim

#endif // BFSIM_ISA_BUILDER_HH
