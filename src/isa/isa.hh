/**
 * @file
 * The simulator's Alpha-flavoured RISC instruction set.
 *
 * The paper's mechanism needs no new instructions, only ones that already
 * exist on PowerPC / IA-64 class ISAs: cache-block invalidates (ICBI /
 * DCBI), instruction-stream sync (ISYNC), memory fences, and LL/SC for the
 * software barriers. This ISA provides exactly those plus the usual
 * integer/FP/branch set, and one extra opcode (HBAR) used only by the
 * dedicated-network baseline barrier (Beckmann & Polychronopoulos style),
 * which *does* require core modification — that contrast is part of the
 * paper's argument.
 *
 * Encoding fiction: every instruction occupies 4 bytes so that instruction
 * cache behaviour (16 instructions per 64-byte line) is realistic.
 */

#ifndef BFSIM_ISA_ISA_HH
#define BFSIM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace bfsim
{

/** Bytes per (fictional) encoded instruction. */
constexpr unsigned instBytes = 4;

/** Number of architectural integer registers; x0 reads as zero. */
constexpr unsigned numIntRegs = 32;

/** Number of architectural floating-point registers. */
constexpr unsigned numFpRegs = 32;

enum class Opcode : uint8_t
{
    // Integer register-register ALU.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Sll, Srl, Sra,
    Slt, Sltu,
    // Integer register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // Load 64-bit immediate.
    Li,
    // Floating point (double precision).
    Fadd, Fsub, Fmul, Fdiv, Fneg, Fabs, Fmov,
    CvtIF,   ///< fp[rd] = double(int[rs1])
    CvtFI,   ///< int[rd] = int64(fp[rs1])
    Flt,     ///< int[rd] = fp[rs1] < fp[rs2]
    Fle,     ///< int[rd] = fp[rs1] <= fp[rs2]
    Feq,     ///< int[rd] = fp[rs1] == fp[rs2]
    // Memory. Address = int[rs1] + imm.
    Lb, Lw, Ld,
    Sb, Sw, Sd,
    Fld, Fsd,
    Ll,      ///< load-linked (64-bit), like Alpha ldq_l
    Sc,      ///< store-conditional (64-bit), rd = 1 on success else 0
    // Control. Branch/jump targets are absolute byte addresses in imm.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    J,       ///< unconditional jump to imm
    Jal,     ///< int[rd] = return address; jump to imm
    Jalr,    ///< int[rd] = return address; jump to int[rs1] + imm
    Jr,      ///< jump to int[rs1]
    Halt,    ///< thread finished
    // Synchronization / cache control.
    Fence,   ///< full memory fence (drain loads + stores)
    Icbi,    ///< invalidate I-cache block at int[rs1] + imm, down to filter
    Dcbi,    ///< invalidate D-cache block at int[rs1] + imm, down to filter
    Isync,   ///< discard fetched/prefetched instructions
    Hbar,    ///< dedicated-network barrier; imm = network barrier id
    Nop,

    NumOpcodes,
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
};

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Human-readable rendering of one instruction. */
std::string disassemble(const Instruction &inst);

/** True for loads, stores, LL/SC, fences and cache-control ops. */
bool isMemOp(Opcode op);

/** True for conditional branches and jumps. */
bool isControlOp(Opcode op);

/** True when the opcode writes an integer destination register. */
bool writesIntReg(Opcode op);

/** True when the opcode writes a floating-point destination register. */
bool writesFpReg(Opcode op);

} // namespace bfsim

#endif // BFSIM_ISA_ISA_HH
