/**
 * @file
 * Opcode metadata and the disassembler.
 */

#include "isa/isa.hh"

#include <sstream>

namespace bfsim
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Srai: return "srai";
      case Opcode::Slti: return "slti";
      case Opcode::Li: return "li";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Fneg: return "fneg";
      case Opcode::Fabs: return "fabs";
      case Opcode::Fmov: return "fmov";
      case Opcode::CvtIF: return "cvt.i.f";
      case Opcode::CvtFI: return "cvt.f.i";
      case Opcode::Flt: return "flt";
      case Opcode::Fle: return "fle";
      case Opcode::Feq: return "feq";
      case Opcode::Lb: return "lb";
      case Opcode::Lw: return "lw";
      case Opcode::Ld: return "ld";
      case Opcode::Sb: return "sb";
      case Opcode::Sw: return "sw";
      case Opcode::Sd: return "sd";
      case Opcode::Fld: return "fld";
      case Opcode::Fsd: return "fsd";
      case Opcode::Ll: return "ll";
      case Opcode::Sc: return "sc";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::J: return "j";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Jr: return "jr";
      case Opcode::Halt: return "halt";
      case Opcode::Fence: return "fence";
      case Opcode::Icbi: return "icbi";
      case Opcode::Dcbi: return "dcbi";
      case Opcode::Isync: return "isync";
      case Opcode::Hbar: return "hbar";
      case Opcode::Nop: return "nop";
      default: return "???";
    }
}

bool
isMemOp(Opcode op)
{
    switch (op) {
      case Opcode::Lb: case Opcode::Lw: case Opcode::Ld:
      case Opcode::Sb: case Opcode::Sw: case Opcode::Sd:
      case Opcode::Fld: case Opcode::Fsd:
      case Opcode::Ll: case Opcode::Sc:
      case Opcode::Fence: case Opcode::Icbi: case Opcode::Dcbi:
        return true;
      default:
        return false;
    }
}

bool
isControlOp(Opcode op)
{
    switch (op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
      case Opcode::J: case Opcode::Jal: case Opcode::Jalr:
      case Opcode::Jr:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
writesIntReg(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
      case Opcode::Sll: case Opcode::Srl: case Opcode::Sra:
      case Opcode::Slt: case Opcode::Sltu:
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Srai: case Opcode::Slti:
      case Opcode::Li:
      case Opcode::CvtFI:
      case Opcode::Flt: case Opcode::Fle: case Opcode::Feq:
      case Opcode::Lb: case Opcode::Lw: case Opcode::Ld:
      case Opcode::Ll: case Opcode::Sc:
      case Opcode::Jal: case Opcode::Jalr:
        return true;
      default:
        return false;
    }
}

bool
writesFpReg(Opcode op)
{
    switch (op) {
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
      case Opcode::Fdiv: case Opcode::Fneg: case Opcode::Fabs:
      case Opcode::Fmov:
      case Opcode::CvtIF:
      case Opcode::Fld:
        return true;
      default:
        return false;
    }
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Li:
        os << " x" << int(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Lb: case Opcode::Lw: case Opcode::Ld: case Opcode::Ll:
        os << " x" << int(inst.rd) << ", " << inst.imm
           << "(x" << int(inst.rs1) << ")";
        break;
      case Opcode::Fld:
        os << " f" << int(inst.rd) << ", " << inst.imm
           << "(x" << int(inst.rs1) << ")";
        break;
      case Opcode::Sb: case Opcode::Sw: case Opcode::Sd: case Opcode::Sc:
        os << " x" << int(inst.rs2) << ", " << inst.imm
           << "(x" << int(inst.rs1) << ")";
        break;
      case Opcode::Fsd:
        os << " f" << int(inst.rs2) << ", " << inst.imm
           << "(x" << int(inst.rs1) << ")";
        break;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
        os << " x" << int(inst.rs1) << ", x" << int(inst.rs2)
           << ", 0x" << std::hex << inst.imm;
        break;
      case Opcode::J:
        os << " 0x" << std::hex << inst.imm;
        break;
      case Opcode::Jal:
        os << " x" << int(inst.rd) << ", 0x" << std::hex << inst.imm;
        break;
      case Opcode::Jalr:
        os << " x" << int(inst.rd) << ", x" << int(inst.rs1);
        break;
      case Opcode::Jr:
        os << " x" << int(inst.rs1);
        break;
      case Opcode::Icbi: case Opcode::Dcbi:
        os << " " << inst.imm << "(x" << int(inst.rs1) << ")";
        break;
      case Opcode::Hbar:
        os << " " << inst.imm;
        break;
      case Opcode::Fence: case Opcode::Isync:
      case Opcode::Halt: case Opcode::Nop:
        break;
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmul:
      case Opcode::Fdiv:
        os << " f" << int(inst.rd) << ", f" << int(inst.rs1)
           << ", f" << int(inst.rs2);
        break;
      case Opcode::Fneg: case Opcode::Fabs: case Opcode::Fmov:
        os << " f" << int(inst.rd) << ", f" << int(inst.rs1);
        break;
      case Opcode::CvtIF:
        os << " f" << int(inst.rd) << ", x" << int(inst.rs1);
        break;
      case Opcode::CvtFI:
        os << " x" << int(inst.rd) << ", f" << int(inst.rs1);
        break;
      case Opcode::Flt: case Opcode::Fle: case Opcode::Feq:
        os << " x" << int(inst.rd) << ", f" << int(inst.rs1)
           << ", f" << int(inst.rs2);
        break;
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Srai: case Opcode::Slti:
        os << " x" << int(inst.rd) << ", x" << int(inst.rs1)
           << ", " << inst.imm;
        break;
      default:
        os << " x" << int(inst.rd) << ", x" << int(inst.rs1)
           << ", x" << int(inst.rs2);
        break;
    }
    return os.str();
}

} // namespace bfsim
