/**
 * @file
 * A small textual assembler for the simulator's ISA.
 *
 * Lets tests, examples and exploratory work express programs as assembly
 * text instead of ProgramBuilder calls. Syntax:
 *
 * @code
 *     # comment; ';' also starts a comment
 *     .equ   buf, 0x40000000      # define a symbol (before use)
 *     .org   0x100000             # start (or resume) a section
 *     .entry start                # entry label (default: first inst)
 * start:
 *     li     x1, 10
 *     li     x2, buf
 * loop:
 *     ld     x3, 0(x2)
 *     add    x4, x4, x3
 *     addi   x1, x1, -1
 *     bnez   x1, loop
 *     halt
 * @endcode
 *
 * Registers: x0..x31 (aliases: zero, ra), f0..f31. Immediates accept
 * decimal, hex (0x...), negative values, and .equ symbols. Memory
 * operands use the offset(base) form. Branch targets are labels.
 * Pseudo-instructions: mov, beqz, bnez, ret, j/jal label, jalr.
 */

#ifndef BFSIM_ISA_ASSEMBLER_HH
#define BFSIM_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace bfsim
{

/**
 * Assemble @p source into a Program.
 * @param source Assembly text.
 * @param defaultBase Section base used when no .org precedes code.
 * @throws FatalError with a line-numbered message on any syntax error,
 *         unknown mnemonic/register, or undefined label.
 */
ProgramPtr assemble(const std::string &source,
                    Addr defaultBase = 0x0010'0000);

} // namespace bfsim

#endif // BFSIM_ISA_ASSEMBLER_HH
