/**
 * @file
 * Assembler implementation: a line-oriented recursive-descent parser that
 * drives ProgramBuilder.
 */

#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "isa/builder.hh"
#include "sim/log.hh"

namespace bfsim
{

namespace
{

/** Operand shapes an instruction can take. */
enum class Form
{
    None,        ///< halt, fence, isync, nop, ret
    Rrr,         ///< add rd, rs1, rs2
    Rri,         ///< addi rd, rs1, imm
    Ri,          ///< li rd, imm
    LoadMem,     ///< ld rd, off(base)
    StoreMem,    ///< sd rs2, off(base)
    ScMem,       ///< sc rd, rs2, off(base)
    Branch,      ///< beq rs1, rs2, label
    BranchZ,     ///< beqz rs1, label
    Jump,        ///< j label / jal label (links ra)
    JumpReg,     ///< jr rs1 / jalr rs1 (links ra)
    CacheOp,     ///< icbi off(base) / dcbi off(base)
    Imm,         ///< hbar imm
    Fff,         ///< fadd fd, fs1, fs2
    Ff,          ///< fneg fd, fs1
    FI,          ///< cvt.i.f fd, rs1
    IF,          ///< cvt.f.i rd, fs1
    Iff,         ///< flt rd, fs1, fs2
    Mov,         ///< mov rd, rs1
};

struct OpInfo
{
    Opcode op;
    Form form;
};

const std::map<std::string, OpInfo> &
opTable()
{
    static const std::map<std::string, OpInfo> table = {
        {"add", {Opcode::Add, Form::Rrr}},
        {"sub", {Opcode::Sub, Form::Rrr}},
        {"mul", {Opcode::Mul, Form::Rrr}},
        {"div", {Opcode::Div, Form::Rrr}},
        {"rem", {Opcode::Rem, Form::Rrr}},
        {"and", {Opcode::And, Form::Rrr}},
        {"or", {Opcode::Or, Form::Rrr}},
        {"xor", {Opcode::Xor, Form::Rrr}},
        {"sll", {Opcode::Sll, Form::Rrr}},
        {"srl", {Opcode::Srl, Form::Rrr}},
        {"sra", {Opcode::Sra, Form::Rrr}},
        {"slt", {Opcode::Slt, Form::Rrr}},
        {"sltu", {Opcode::Sltu, Form::Rrr}},
        {"addi", {Opcode::Addi, Form::Rri}},
        {"andi", {Opcode::Andi, Form::Rri}},
        {"ori", {Opcode::Ori, Form::Rri}},
        {"xori", {Opcode::Xori, Form::Rri}},
        {"slli", {Opcode::Slli, Form::Rri}},
        {"srli", {Opcode::Srli, Form::Rri}},
        {"srai", {Opcode::Srai, Form::Rri}},
        {"slti", {Opcode::Slti, Form::Rri}},
        {"li", {Opcode::Li, Form::Ri}},
        {"mov", {Opcode::Addi, Form::Mov}},
        {"lb", {Opcode::Lb, Form::LoadMem}},
        {"lw", {Opcode::Lw, Form::LoadMem}},
        {"ld", {Opcode::Ld, Form::LoadMem}},
        {"fld", {Opcode::Fld, Form::LoadMem}},
        {"ll", {Opcode::Ll, Form::LoadMem}},
        {"sb", {Opcode::Sb, Form::StoreMem}},
        {"sw", {Opcode::Sw, Form::StoreMem}},
        {"sd", {Opcode::Sd, Form::StoreMem}},
        {"fsd", {Opcode::Fsd, Form::StoreMem}},
        {"sc", {Opcode::Sc, Form::ScMem}},
        {"beq", {Opcode::Beq, Form::Branch}},
        {"bne", {Opcode::Bne, Form::Branch}},
        {"blt", {Opcode::Blt, Form::Branch}},
        {"bge", {Opcode::Bge, Form::Branch}},
        {"bltu", {Opcode::Bltu, Form::Branch}},
        {"bgeu", {Opcode::Bgeu, Form::Branch}},
        {"beqz", {Opcode::Beq, Form::BranchZ}},
        {"bnez", {Opcode::Bne, Form::BranchZ}},
        {"j", {Opcode::J, Form::Jump}},
        {"jal", {Opcode::Jal, Form::Jump}},
        {"jr", {Opcode::Jr, Form::JumpReg}},
        {"jalr", {Opcode::Jalr, Form::JumpReg}},
        {"ret", {Opcode::Jr, Form::None}},
        {"halt", {Opcode::Halt, Form::None}},
        {"fence", {Opcode::Fence, Form::None}},
        {"isync", {Opcode::Isync, Form::None}},
        {"nop", {Opcode::Nop, Form::None}},
        {"icbi", {Opcode::Icbi, Form::CacheOp}},
        {"dcbi", {Opcode::Dcbi, Form::CacheOp}},
        {"hbar", {Opcode::Hbar, Form::Imm}},
        {"fadd", {Opcode::Fadd, Form::Fff}},
        {"fsub", {Opcode::Fsub, Form::Fff}},
        {"fmul", {Opcode::Fmul, Form::Fff}},
        {"fdiv", {Opcode::Fdiv, Form::Fff}},
        {"fneg", {Opcode::Fneg, Form::Ff}},
        {"fabs", {Opcode::Fabs, Form::Ff}},
        {"fmov", {Opcode::Fmov, Form::Ff}},
        {"cvt.i.f", {Opcode::CvtIF, Form::FI}},
        {"cvt.f.i", {Opcode::CvtFI, Form::IF}},
        {"flt", {Opcode::Flt, Form::Iff}},
        {"fle", {Opcode::Fle, Form::Iff}},
        {"feq", {Opcode::Feq, Form::Iff}},
    };
    return table;
}

/** Parser for one assembly unit. */
class Assembler
{
  public:
    Assembler(const std::string &src, Addr defaultBase)
        : source(src), builder(defaultBase)
    {
    }

    ProgramPtr
    run()
    {
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo;
            parseLine(line);
        }
        return builder.build(entryLabel);
    }

  private:
    [[noreturn]] void
    err(const std::string &msg)
    {
        fatal("asm line " + std::to_string(lineNo) + ": " + msg);
    }

    static std::string
    stripComment(const std::string &line)
    {
        size_t pos = line.find_first_of("#;");
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    std::vector<std::string>
    tokenize(const std::string &text)
    {
        // Split on whitespace and commas; keep (...) attached.
        std::vector<std::string> tokens;
        std::string cur;
        for (char c : text) {
            if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
                if (!cur.empty()) {
                    tokens.push_back(cur);
                    cur.clear();
                }
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            tokens.push_back(cur);
        return tokens;
    }

    IntReg
    intReg(const std::string &t)
    {
        if (t == "zero")
            return regZero;
        if (t == "ra")
            return regRa;
        if (t.size() >= 2 && t[0] == 'x') {
            char *end = nullptr;
            long v = std::strtol(t.c_str() + 1, &end, 10);
            if (*end == '\0' && v >= 0 && v < long(numIntRegs))
                return IntReg{unsigned(v)};
        }
        err("bad integer register '" + t + "'");
    }

    FpReg
    fpReg(const std::string &t)
    {
        if (t.size() >= 2 && t[0] == 'f') {
            char *end = nullptr;
            long v = std::strtol(t.c_str() + 1, &end, 10);
            if (*end == '\0' && v >= 0 && v < long(numFpRegs))
                return FpReg{unsigned(v)};
        }
        err("bad fp register '" + t + "'");
    }

    int64_t
    immediate(const std::string &t)
    {
        auto sym = symbols.find(t);
        if (sym != symbols.end())
            return sym->second;
        char *end = nullptr;
        long long v = std::strtoll(t.c_str(), &end, 0);
        if (end != t.c_str() && *end == '\0')
            return v;
        err("bad immediate '" + t + "'");
    }

    /** Parse "off(base)" or "(base)" or "symbol(base)". */
    std::pair<IntReg, int64_t>
    memOperand(const std::string &t)
    {
        size_t open = t.find('(');
        size_t close = t.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open || close + 1 != t.size()) {
            err("bad memory operand '" + t + "'");
        }
        std::string offTok = t.substr(0, open);
        std::string baseTok = t.substr(open + 1, close - open - 1);
        int64_t off = offTok.empty() ? 0 : immediate(offTok);
        return {intReg(baseTok), off};
    }

    void
    parseDirective(const std::vector<std::string> &tok)
    {
        if (tok[0] == ".org") {
            if (tok.size() != 2)
                err(".org needs one address");
            builder.beginSection(Addr(immediate(tok[1])));
        } else if (tok[0] == ".equ") {
            if (tok.size() != 3)
                err(".equ needs a name and a value");
            symbols[tok[1]] = immediate(tok[2]);
        } else if (tok[0] == ".entry") {
            if (tok.size() != 2)
                err(".entry needs a label");
            entryLabel = tok[1];
        } else {
            err("unknown directive '" + tok[0] + "'");
        }
    }

    void
    parseLine(const std::string &raw)
    {
        std::string text = stripComment(raw);
        auto tok = tokenize(text);
        if (tok.empty())
            return;

        // Labels: "name:" possibly followed by an instruction.
        while (!tok.empty() && tok[0].back() == ':') {
            builder.label(tok[0].substr(0, tok[0].size() - 1));
            tok.erase(tok.begin());
        }
        if (tok.empty())
            return;

        if (tok[0][0] == '.') {
            parseDirective(tok);
            return;
        }

        auto it = opTable().find(tok[0]);
        if (it == opTable().end())
            err("unknown mnemonic '" + tok[0] + "'");
        emit(it->second, tok);
    }

    void
    need(const std::vector<std::string> &tok, size_t n)
    {
        if (tok.size() != n + 1)
            err("'" + tok[0] + "' expects " + std::to_string(n) +
                " operand(s)");
    }

    void
    emit(const OpInfo &info, const std::vector<std::string> &tok)
    {
        ProgramBuilder &b = builder;
        switch (info.form) {
          case Form::None:
            need(tok, 0);
            if (info.op == Opcode::Jr)
                b.ret();
            else if (info.op == Opcode::Halt)
                b.halt();
            else if (info.op == Opcode::Fence)
                b.fence();
            else if (info.op == Opcode::Isync)
                b.isync();
            else
                b.nop();
            break;
          case Form::Rrr: {
            need(tok, 3);
            Instruction inst{info.op, intReg(tok[1]).idx,
                             intReg(tok[2]).idx, intReg(tok[3]).idx, 0};
            emitRaw(inst);
            break;
          }
          case Form::Rri: {
            need(tok, 3);
            Instruction inst{info.op, intReg(tok[1]).idx,
                             intReg(tok[2]).idx, 0, immediate(tok[3])};
            emitRaw(inst);
            break;
          }
          case Form::Mov:
            need(tok, 2);
            b.mov(intReg(tok[1]), intReg(tok[2]));
            break;
          case Form::Ri:
            need(tok, 2);
            b.li(intReg(tok[1]), immediate(tok[2]));
            break;
          case Form::LoadMem: {
            need(tok, 2);
            auto [base, off] = memOperand(tok[2]);
            if (info.op == Opcode::Fld)
                b.fld(fpReg(tok[1]), base, off);
            else if (info.op == Opcode::Ll)
                b.ll(intReg(tok[1]), base, off);
            else
                emitRaw({info.op, intReg(tok[1]).idx, base.idx, 0, off});
            break;
          }
          case Form::StoreMem: {
            need(tok, 2);
            auto [base, off] = memOperand(tok[2]);
            if (info.op == Opcode::Fsd)
                b.fsd(fpReg(tok[1]), base, off);
            else
                emitRaw({info.op, 0, base.idx, intReg(tok[1]).idx, off});
            break;
          }
          case Form::ScMem: {
            need(tok, 3);
            auto [base, off] = memOperand(tok[3]);
            b.sc(intReg(tok[1]), intReg(tok[2]), base, off);
            break;
          }
          case Form::Branch:
            need(tok, 3);
            emitBranch(info.op, intReg(tok[1]), intReg(tok[2]), tok[3]);
            break;
          case Form::BranchZ:
            need(tok, 2);
            emitBranch(info.op, intReg(tok[1]), regZero, tok[2]);
            break;
          case Form::Jump:
            need(tok, 1);
            if (info.op == Opcode::Jal)
                b.jal(regRa, tok[1]);
            else
                b.j(tok[1]);
            break;
          case Form::JumpReg:
            need(tok, 1);
            if (info.op == Opcode::Jalr)
                b.jalr(regRa, intReg(tok[1]));
            else
                b.jr(intReg(tok[1]));
            break;
          case Form::CacheOp: {
            need(tok, 1);
            auto [base, off] = memOperand(tok[1]);
            if (info.op == Opcode::Icbi)
                b.icbi(base, off);
            else
                b.dcbi(base, off);
            break;
          }
          case Form::Imm:
            need(tok, 1);
            b.hbar(immediate(tok[1]));
            break;
          case Form::Fff:
            need(tok, 3);
            emitRaw({info.op, fpReg(tok[1]).idx, fpReg(tok[2]).idx,
                     fpReg(tok[3]).idx, 0});
            break;
          case Form::Ff:
            need(tok, 2);
            emitRaw({info.op, fpReg(tok[1]).idx, fpReg(tok[2]).idx, 0, 0});
            break;
          case Form::FI:
            need(tok, 2);
            b.cvtIF(fpReg(tok[1]), intReg(tok[2]));
            break;
          case Form::IF:
            need(tok, 2);
            b.cvtFI(intReg(tok[1]), fpReg(tok[2]));
            break;
          case Form::Iff:
            need(tok, 3);
            emitRaw({info.op, intReg(tok[1]).idx, fpReg(tok[2]).idx,
                     fpReg(tok[3]).idx, 0});
            break;
        }
    }

    void
    emitBranch(Opcode op, IntReg a, IntReg bReg, const std::string &target)
    {
        switch (op) {
          case Opcode::Beq: builder.beq(a, bReg, target); break;
          case Opcode::Bne: builder.bne(a, bReg, target); break;
          case Opcode::Blt: builder.blt(a, bReg, target); break;
          case Opcode::Bge: builder.bge(a, bReg, target); break;
          case Opcode::Bltu: builder.bltu(a, bReg, target); break;
          case Opcode::Bgeu: builder.bgeu(a, bReg, target); break;
          default: err("internal: bad branch opcode");
        }
    }

    /** Emit a raw Instruction through the builder's current section. */
    void
    emitRaw(const Instruction &inst)
    {
        // ProgramBuilder has typed emitters for everything we need except
        // a couple of raw register-field combinations; route through the
        // typed API where it exists to keep a single emission path.
        switch (inst.op) {
          case Opcode::Add: builder.add(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Sub: builder.sub(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Mul: builder.mul(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Div: builder.div(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Rem: builder.rem(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::And: builder.and_(IntReg{inst.rd}, IntReg{inst.rs1},
                                         IntReg{inst.rs2}); break;
          case Opcode::Or: builder.or_(IntReg{inst.rd}, IntReg{inst.rs1},
                                       IntReg{inst.rs2}); break;
          case Opcode::Xor: builder.xor_(IntReg{inst.rd}, IntReg{inst.rs1},
                                         IntReg{inst.rs2}); break;
          case Opcode::Sll: builder.sll(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Srl: builder.srl(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Sra: builder.sra(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Slt: builder.slt(IntReg{inst.rd}, IntReg{inst.rs1},
                                        IntReg{inst.rs2}); break;
          case Opcode::Sltu: builder.sltu(IntReg{inst.rd},
                                          IntReg{inst.rs1},
                                          IntReg{inst.rs2}); break;
          case Opcode::Addi: builder.addi(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Andi: builder.andi(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Ori: builder.ori(IntReg{inst.rd}, IntReg{inst.rs1},
                                        inst.imm); break;
          case Opcode::Xori: builder.xori(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Slli: builder.slli(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Srli: builder.srli(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Srai: builder.srai(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Slti: builder.slti(IntReg{inst.rd},
                                          IntReg{inst.rs1}, inst.imm);
            break;
          case Opcode::Lb: builder.lb(IntReg{inst.rd}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Lw: builder.lw(IntReg{inst.rd}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Ld: builder.ld(IntReg{inst.rd}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Sb: builder.sb(IntReg{inst.rs2}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Sw: builder.sw(IntReg{inst.rs2}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Sd: builder.sd(IntReg{inst.rs2}, IntReg{inst.rs1},
                                      inst.imm); break;
          case Opcode::Fadd: builder.fadd(FpReg{inst.rd}, FpReg{inst.rs1},
                                          FpReg{inst.rs2}); break;
          case Opcode::Fsub: builder.fsub(FpReg{inst.rd}, FpReg{inst.rs1},
                                          FpReg{inst.rs2}); break;
          case Opcode::Fmul: builder.fmul(FpReg{inst.rd}, FpReg{inst.rs1},
                                          FpReg{inst.rs2}); break;
          case Opcode::Fdiv: builder.fdiv(FpReg{inst.rd}, FpReg{inst.rs1},
                                          FpReg{inst.rs2}); break;
          case Opcode::Fneg: builder.fneg(FpReg{inst.rd},
                                          FpReg{inst.rs1}); break;
          case Opcode::Fabs: builder.fabs_(FpReg{inst.rd},
                                           FpReg{inst.rs1}); break;
          case Opcode::Fmov: builder.fmov(FpReg{inst.rd},
                                          FpReg{inst.rs1}); break;
          case Opcode::Flt: builder.flt(IntReg{inst.rd}, FpReg{inst.rs1},
                                        FpReg{inst.rs2}); break;
          case Opcode::Fle: builder.fle(IntReg{inst.rd}, FpReg{inst.rs1},
                                        FpReg{inst.rs2}); break;
          case Opcode::Feq: builder.feq(IntReg{inst.rd}, FpReg{inst.rs1},
                                        FpReg{inst.rs2}); break;
          default:
            err("internal: emitRaw on unsupported opcode");
        }
    }

    const std::string &source;
    ProgramBuilder builder;
    std::map<std::string, int64_t> symbols;
    std::string entryLabel;
    unsigned lineNo = 0;
};

} // namespace

ProgramPtr
assemble(const std::string &source, Addr defaultBase)
{
    Assembler as(source, defaultBase);
    return as.run();
}

} // namespace bfsim
