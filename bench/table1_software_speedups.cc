/**
 * @file
 * Table 1: speedup of each kernel distributed across a 16-core CMP with
 * the *best software* barrier, relative to sequential execution on one
 * core (Livermore loops at vector length 256, EEMBC kernels at their
 * standard sizes). A filter-barrier column is printed alongside for the
 * paper's headline contrast: software speedups straddle 1.0 (loop 2 and
 * Viterbi are slowdowns), while the filter always speeds up.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Table 1: best-software-barrier speedups, 16 cores");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);
    unsigned reps = unsigned(opts.getUint("reps", 2));

    struct Row
    {
        KernelId id;
        const char *label;
        uint64_t n;
    };
    const std::vector<Row> rows = {
        {KernelId::Livermore2, "Livermore loop 2", 256},
        {KernelId::Livermore3, "Livermore loop 3", 256},
        {KernelId::Livermore6, "Livermore loop 6", 256},
        {KernelId::Autocorr, "EEMBC Autocorrelation", 1024},
        {KernelId::Viterbi, "EEMBC Viterbi", 256},
    };

    struct Out
    {
        const char *label;
        const char *kernel;
        double bestSw, sCentral, sTree, bestFilter, sNet;
    };
    std::vector<Out> outs;

    printHeader(std::cout, "kernel",
                {"bestSW", "whichSW", "filter", "hwnet"});
    for (const Row &row : rows) {
        KernelParams p;
        p.n = row.n;
        p.reps = reps;
        auto seq = runKernel(cfg, row.id, p, false);

        auto central = runKernel(cfg, row.id, p, true,
                                 BarrierKind::SwCentral, cfg.numCores);
        auto tree = runKernel(cfg, row.id, p, true, BarrierKind::SwTree,
                              cfg.numCores);
        double sCentral = double(seq.cycles) / double(central.cycles);
        double sTree = double(seq.cycles) / double(tree.cycles);
        double bestSw = std::max(sCentral, sTree);

        // Best filter variant, as the paper reports per-kernel bests.
        double bestFilter = 0;
        for (BarrierKind k :
             {BarrierKind::FilterICache, BarrierKind::FilterDCache,
              BarrierKind::FilterICachePP, BarrierKind::FilterDCachePP}) {
            auto r = runKernel(cfg, row.id, p, true, k, cfg.numCores);
            bestFilter = std::max(
                bestFilter, double(seq.cycles) / double(r.cycles));
        }
        auto net = runKernel(cfg, row.id, p, true, BarrierKind::HwNetwork,
                             cfg.numCores);

        double sNet = double(seq.cycles) / double(net.cycles);
        printRow(std::cout, row.label,
                 {bestSw, sCentral >= sTree ? 0.0 : 1.0, bestFilter,
                  sNet});
        outs.push_back({row.label, kernelName(row.id), bestSw, sCentral,
                        sTree, bestFilter, sNet});
    }
    std::cout << "\nwhichSW: 0 = centralized, 1 = combining tree\n";

    bench::writeBenchJson(
        bench::jsonPathFromCli(argc, argv), [&](JsonWriter &w) {
            w.beginObject();
            w.kv("bench", "table1_software_speedups");
            w.kv("reps", reps);
            w.key("config");
            bench::writeConfigJson(w, cfg);
            w.key("kernels").beginArray();
            for (const Out &o : outs) {
                w.beginObject();
                w.kv("label", o.label);
                w.kv("kernel", o.kernel);
                w.kv("bestSoftwareSpeedup", o.bestSw);
                w.kv("centralizedSpeedup", o.sCentral);
                w.kv("treeSpeedup", o.sTree);
                w.kv("bestFilterSpeedup", o.bestFilter);
                w.kv("networkSpeedup", o.sNet);
                w.end();
            }
            w.end();
            w.end();
        });
    return 0;
}
