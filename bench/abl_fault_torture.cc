/**
 * @file
 * Ablation: barrier robustness under injected faults.
 *
 * Runs the inner-product kernel under every barrier mechanism three ways:
 * clean (no faults), perturbed (random bus/DRAM delay, filter-line
 * evictions, forced context switches of blocked threads), and hostile
 * (perturbed plus forced Section 3.3.4 filter timeouts, which poison the
 * filter and degrade the barrier to the software fallback). Every cell
 * reports simulated cycles, recovery count, and whether the kernel result
 * still matched the golden reference. All schedules derive from one seed;
 * rerun with the printed seed to reproduce a run exactly.
 */

#include <utility>
#include <vector>

#include "bench_common.hh"

using namespace bfsim;

namespace
{

void
applyPerturb(CmpConfig &cfg, uint64_t seed)
{
    cfg.faults.enabled = true;
    cfg.faults.seed = seed;
    cfg.faults.interval = 400;
    cfg.faults.busDelayProb = 0.05;
    cfg.faults.busDelayMax = 12;
    cfg.faults.memDelayProb = 0.10;
    cfg.faults.memDelayMax = 60;
    cfg.faults.evictProb = 0.25;
    cfg.faults.descheduleProb = 0.05;
    cfg.faults.rescheduleDelayMin = 200;
    cfg.faults.rescheduleDelayMax = 2000;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Ablation: fault torture — barriers under injected faults");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned threads = unsigned(opts.getUint("cores", 8));
    uint64_t seed = opts.getUint("seed", 0xb10cf11e);
    std::string jsonFile = bench::jsonPathFromCli(argc, argv);
    KernelParams p;
    p.n = opts.getUint("n", 512);
    p.reps = unsigned(opts.getUint("reps", 2));

    std::cout << "kernel: " << kernelName(KernelId::Livermore3)
              << "  threads: " << threads << "  N: " << p.n
              << "  seed: " << seed << "\n\n";

    printHeader(std::cout, "barrier",
                {"clean", "perturb", "hostile", "recov", "ok"});

    struct Cell
    {
        BarrierKind kind;
        KernelRun clean, perturb, hostile;
    };
    std::vector<Cell> cells;

    for (BarrierKind kind : allBarrierKinds()) {
        CmpConfig clean = CmpConfig::fromOptions(opts);
        clean.numCores = threads;
        auto rClean = runKernel(clean, KernelId::Livermore3, p, true, kind,
                                threads);

        CmpConfig perturb = clean;
        perturb.filterRecovery = true;
        applyPerturb(perturb, seed);
        auto rPerturb = runKernel(perturb, KernelId::Livermore3, p, true,
                                  kind, threads);

        CmpConfig hostile = perturb;
        hostile.faults.timeoutProb = 0.25;
        auto rHostile = runKernel(hostile, KernelId::Livermore3, p, true,
                                  kind, threads);

        bool ok = rClean.correct && rPerturb.correct && rHostile.correct;
        printRow(std::cout, barrierKindName(kind),
                 {double(rClean.cycles), double(rPerturb.cycles),
                  double(rHostile.cycles),
                  double(rPerturb.recoveries + rHostile.recoveries),
                  ok ? 1.0 : 0.0});
        cells.push_back({kind, rClean, rPerturb, rHostile});
    }

    bench::writeBenchJson(jsonFile, [&](JsonWriter &w) {
        w.beginObject();
        w.kv("bench", "abl_fault_torture");
        w.kv("kernel", kernelName(KernelId::Livermore3));
        w.kv("threads", threads);
        w.kv("n", p.n);
        w.kv("reps", p.reps);
        w.kv("seed", seed);
        w.key("mechanisms");
        w.beginArray();
        for (const Cell &c : cells) {
            w.beginObject();
            w.kv("name", barrierKindName(c.kind));
            const std::pair<const char *, const KernelRun *> rows[] = {
                {"clean", &c.clean},
                {"perturb", &c.perturb},
                {"hostile", &c.hostile},
            };
            for (const auto &[label, run] : rows) {
                w.key(label);
                bench::writeMechanismJson(w, barrierKindName(c.kind), *run, 0.0);
            }
            w.kv("ok", c.clean.correct && c.perturb.correct &&
                           c.hostile.correct);
            w.end();
        }
        w.end();
        w.end();
    });
    return 0;
}
