/**
 * @file
 * Ablation: barrier robustness under injected faults.
 *
 * Runs the inner-product kernel under every barrier mechanism three ways:
 * clean (no faults), perturbed (random bus/DRAM delay, filter-line
 * evictions, forced context switches of blocked threads), and hostile
 * (perturbed plus forced Section 3.3.4 filter timeouts, which poison the
 * filter and degrade the barrier to the software fallback). Every cell
 * reports simulated cycles, recovery count, and whether the kernel result
 * still matched the golden reference. All schedules derive from one seed;
 * rerun with the printed seed to reproduce a run exactly.
 */

#include "bench_common.hh"

using namespace bfsim;

namespace
{

void
applyPerturb(CmpConfig &cfg, uint64_t seed)
{
    cfg.faults.enabled = true;
    cfg.faults.seed = seed;
    cfg.faults.interval = 400;
    cfg.faults.busDelayProb = 0.05;
    cfg.faults.busDelayMax = 12;
    cfg.faults.memDelayProb = 0.10;
    cfg.faults.memDelayMax = 60;
    cfg.faults.evictProb = 0.25;
    cfg.faults.descheduleProb = 0.05;
    cfg.faults.rescheduleDelayMin = 200;
    cfg.faults.rescheduleDelayMax = 2000;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Ablation: fault torture — barriers under injected faults");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned threads = unsigned(opts.getUint("cores", 8));
    uint64_t seed = opts.getUint("seed", 0xb10cf11e);
    KernelParams p;
    p.n = opts.getUint("n", 512);
    p.reps = unsigned(opts.getUint("reps", 2));

    std::cout << "kernel: " << kernelName(KernelId::Livermore3)
              << "  threads: " << threads << "  N: " << p.n
              << "  seed: " << seed << "\n\n";

    printHeader(std::cout, "barrier",
                {"clean", "perturb", "hostile", "recov", "ok"});

    for (BarrierKind kind : allBarrierKinds()) {
        CmpConfig clean = CmpConfig::fromOptions(opts);
        clean.numCores = threads;
        auto rClean = runKernel(clean, KernelId::Livermore3, p, true, kind,
                                threads);

        CmpConfig perturb = clean;
        perturb.filterRecovery = true;
        applyPerturb(perturb, seed);
        auto rPerturb = runKernel(perturb, KernelId::Livermore3, p, true,
                                  kind, threads);

        CmpConfig hostile = perturb;
        hostile.faults.timeoutProb = 0.25;
        auto rHostile = runKernel(hostile, KernelId::Livermore3, p, true,
                                  kind, threads);

        bool ok = rClean.correct && rPerturb.correct && rHostile.correct;
        printRow(std::cout, barrierKindName(kind),
                 {double(rClean.cycles), double(rPerturb.cycles),
                  double(rHostile.cycles),
                  double(rPerturb.recoveries + rHostile.recoveries),
                  ok ? 1.0 : 0.0});
    }
    return 0;
}
