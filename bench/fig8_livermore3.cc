/**
 * @file
 * Figure 8: Livermore loop 3 (inner product) execution time vs vector
 * length on 16 cores, per barrier mechanism.
 *
 * Expected shape: with filter barriers the parallel version overtakes
 * sequential at vector lengths as short as ~64 (8 elements per thread,
 * the minimum cache-line-sized partition); software barriers need
 * vectors a factor of 2-4 longer.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 8: Livermore loop 3 time vs vector length");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    std::vector<uint64_t> lengths = {16, 32, 64, 128, 256, 512, 1024};
    if (opts.has("n"))
        lengths = {opts.getUint("n", 256)};
    unsigned reps = unsigned(opts.getUint("reps", 2));

    std::cout << "cores=" << cfg.numCores << " reps=" << reps << "\n";
    bench::vectorSweep(cfg, KernelId::Livermore3, lengths, reps,
                       cfg.numCores, allBarrierKinds(),
                       bench::jsonPathFromCli(argc, argv));
    return 0;
}
