/**
 * @file
 * Ablation: the two ends of the parallelism spectrum the paper's kernel
 * selection deliberately excludes (Section 4.4) — Livermore loop 1
 * (embarrassingly parallel: one closing barrier, near-linear speedup,
 * barrier mechanism irrelevant) and loop 5 (a serial dependence chain:
 * distribution buys nothing and only adds barrier overhead). The barrier
 * mechanism only matters in between, where the studied kernels live.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: embarrassingly-parallel vs serial kernels");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);
    KernelParams p;
    p.n = opts.getUint("n", 2048);
    p.reps = unsigned(opts.getUint("reps", 4));

    for (KernelId id : {KernelId::Livermore1, KernelId::Livermore5}) {
        std::cout << "\n--- " << kernelName(id) << " (n=" << p.n << ") ---\n";
        auto seq = runKernel(cfg, id, p, false);
        std::cout << "sequential cycles: " << seq.cycles << "\n";
        printHeader(std::cout, "barrier", {"cycles", "speedup", "ok"});
        for (BarrierKind kind :
             {BarrierKind::SwCentral, BarrierKind::FilterDCache,
              BarrierKind::HwNetwork}) {
            auto par = runKernel(cfg, id, p, true, kind, cfg.numCores);
            printRow(std::cout, barrierKindName(kind),
                     {double(par.cycles),
                      double(seq.cycles) / double(par.cycles),
                      par.correct ? 1.0 : 0.0});
        }
    }
    std::cout << "\nLoop 1 speeds up regardless of mechanism; loop 5\n"
              << "cannot be helped by any barrier. The paper's kernels\n"
              << "(2, 3, 6, autocorrelation, Viterbi) sit between these\n"
              << "extremes, where barrier cost decides the outcome.\n";
    return 0;
}
