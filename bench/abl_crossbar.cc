/**
 * @file
 * Ablation: shared bus vs Niagara-style crossbar fabric (Section 3.2
 * notes Niagara links cores to L2 banks with a crossbar). The crossbar's
 * independent per-bank/per-core links remove the global serialization
 * that bends every memory-system barrier's curve past 16 cores — but a
 * barrier's own lines all live in ONE bank, so its release path still
 * serializes there; the crossbar mostly helps the software barriers,
 * whose traffic spreads across banks.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: shared bus vs crossbar fabric");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned barriers = unsigned(opts.getUint("barriers", 16));
    unsigned loops = unsigned(opts.getUint("loops", 4));

    std::vector<unsigned> coreCounts = {8, 16, 32, 64};
    std::vector<std::string> cols;
    for (unsigned n : coreCounts) {
        cols.push_back("bus" + std::to_string(n));
        cols.push_back("xbar" + std::to_string(n));
    }

    printHeader(std::cout, "cycles/barrier", cols, 9);
    for (BarrierKind kind :
         {BarrierKind::SwCentral, BarrierKind::SwTree,
          BarrierKind::FilterDCachePP, BarrierKind::HwNetwork}) {
        std::vector<double> row;
        for (unsigned n : coreCounts) {
            for (bool xbar : {false, true}) {
                CmpConfig cfg = CmpConfig::fromOptions(opts);
                cfg.numCores = n;
                cfg.crossbar = xbar;
                auto r = measureBarrierLatency(cfg, kind, n, barriers,
                                               loops);
                row.push_back(r.cyclesPerBarrier);
            }
        }
        printRow(std::cout, barrierKindName(kind), row, 9, 1);
    }
    return 0;
}
