/**
 * @file
 * Figure 7: Livermore loop 2 (ICCG excerpt) execution time vs vector
 * length on 16 cores, per barrier mechanism.
 *
 * Expected shape: available parallelism halves every do-while step, so
 * the parallel version only overtakes sequential at vector lengths around
 * 256 with filter barriers — later than loops 3 and 6 — and software
 * barriers need vectors 2-4x longer still.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 7: Livermore loop 2 time vs vector length");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    std::vector<uint64_t> lengths = {32, 64, 128, 256, 512, 1024};
    if (opts.has("n"))
        lengths = {opts.getUint("n", 256)};
    unsigned reps = unsigned(opts.getUint("reps", 2));

    std::cout << "cores=" << cfg.numCores << " reps=" << reps << "\n";
    bench::vectorSweep(cfg, KernelId::Livermore2, lengths, reps,
                       cfg.numCores, allBarrierKinds(),
                       bench::jsonPathFromCli(argc, argv));
    return 0;
}
