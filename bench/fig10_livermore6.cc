/**
 * @file
 * Figure 10: Livermore loop 6 (general linear recurrence) execution time
 * vs vector length on 16 cores, per barrier mechanism.
 *
 * Expected shape: one global barrier per wavefront step makes this the
 * most barrier-intensive kernel; with filter barriers the 16-thread
 * version beats sequential from N around 64 and is more than 3x faster
 * by N=256, while software barriers stay slower until much larger N.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 10: Livermore loop 6 time vs vector length");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    std::vector<uint64_t> lengths = {16, 32, 64, 128, 256};
    if (opts.has("n"))
        lengths = {opts.getUint("n", 256)};
    unsigned reps = unsigned(opts.getUint("reps", 2));

    std::cout << "cores=" << cfg.numCores << " reps=" << reps << "\n";
    bench::vectorSweep(cfg, KernelId::Livermore6, lengths, reps,
                       cfg.numCores, allBarrierKinds(),
                       bench::jsonPathFromCli(argc, argv));
    return 0;
}
