/**
 * @file
 * Ablation: barrier filter placement depth (Section 3.1: "increased
 * distance from the core implies increased communication latency; we
 * envision the most likely placement to be in the controller for the
 * first shared level of memory").
 *
 * Placement is modelled two ways:
 *  - at the L2 bank controller (default): barrier lines are retained in
 *    the L2 across explicit invalidations, so released fills are serviced
 *    at L2 latency;
 *  - below the L2 (filterretain=false rows): barrier lines are fully
 *    invalidated and released fills pay L3 latency, swept here to stand
 *    in for deeper placements (L3 / memory controller).
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: filter placement depth");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned threads = unsigned(opts.getUint("cores", 16));
    unsigned barriers = unsigned(opts.getUint("barriers", 32));
    unsigned loops = unsigned(opts.getUint("loops", 8));

    printHeader(std::cout, "placement", {"icache", "dcache"});

    auto measure = [&](bool retain, Tick l3lat) {
        CmpConfig cfg = CmpConfig::fromOptions(opts);
        cfg.numCores = threads;
        cfg.filterRetainsL2Copy = retain;
        cfg.l3Latency = l3lat;
        auto i = measureBarrierLatency(cfg, BarrierKind::FilterICache,
                                       threads, barriers, loops);
        auto d = measureBarrierLatency(cfg, BarrierKind::FilterDCache,
                                       threads, barriers, loops);
        return std::vector<double>{i.cyclesPerBarrier, d.cyclesPerBarrier};
    };

    CmpConfig dflt;
    printRow(std::cout, "L2 controller", measure(true, dflt.l3Latency));
    printRow(std::cout, "below L2 (L3 38cy)",
             measure(false, dflt.l3Latency));
    printRow(std::cout, "below L2 (80cy)", measure(false, 80));
    printRow(std::cout, "memory ctrl (138cy)", measure(false, 138));

    std::cout << "\nDeeper filters starve and release correctly, but each\n"
              << "release pays the deeper service latency — supporting the\n"
              << "paper's choice of the first shared level.\n";
    return 0;
}
