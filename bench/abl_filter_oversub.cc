/**
 * @file
 * Ablation: filter virtualization under oversubscription.
 *
 * Sweeps the group:context ratio from 1:1 to 8:1 by holding the physical
 * filter pool fixed (one bank, two contexts) and multiplying the number
 * of concurrent barrier groups. Each group is a pair of threads pounding
 * a fixed count of barrier episodes with jittered compute between
 * crossings. Reports simulated cycles to drain all groups, per-episode
 * cost, swap traffic (swap-ins and cycles stalled on swaps, from the
 * episode profiler), and whether any group was demoted to the software
 * fallback — the acceptance line for ISSUE 4 is that this column stays
 * zero all the way to 8:1. The 1:1 row doubles as the no-virtualization
 * baseline cost, so (cycles/episode - baseline) isolates the
 * virtualization overhead each ratio pays.
 */

#include <vector>

#include "barriers/barrier_gen.hh"
#include "bench_common.hh"
#include "os/filter_virt.hh"
#include "sys/system.hh"

using namespace bfsim;

namespace
{

struct OversubRun
{
    unsigned groups = 0;
    Tick cycles = 0;
    uint64_t swapIns = 0;
    uint64_t swapStall = 0;
    uint64_t fallbacks = 0;
    uint64_t birthDegraded = 0;
    bool ok = false;
};

OversubRun
runRatio(unsigned groups, unsigned epochs, unsigned swapCycles)
{
    const unsigned tpg = 2;
    CmpConfig cfg;
    cfg.numCores = groups * tpg;
    cfg.l1SizeBytes = 8 * 1024;
    cfg.l2SizeBytes = 64 * 1024;
    cfg.l3SizeBytes = 256 * 1024;
    cfg.l2Banks = 1;
    cfg.filtersPerBank = 2;
    cfg.filterVirtual = true;
    cfg.filterSwapCycles = swapCycles;
    cfg.filterRecovery = true;
    cfg.watchdogInterval = 2'000'000;

    CmpSystem sys(cfg);
    Os &os = sys.os();
    const unsigned line = cfg.lineBytes;
    Addr cells = os.allocData(uint64_t(groups) * tpg * line, line);

    for (unsigned g = 0; g < groups; ++g) {
        BarrierHandle h = os.registerBarrier(BarrierKind::FilterDCache, tpg);
        for (unsigned s = 0; s < tpg; ++s) {
            const unsigned idx = g * tpg + s;
            ProgramBuilder b(os.codeBase(ThreadId(idx)));
            BarrierCodegen bar(h, s);
            IntReg rK = b.temp(), rKmax = b.temp(), rDelay = b.temp(),
                   rCell = b.temp();
            bar.emitInit(b);
            b.li(rCell, int64_t(cells + uint64_t(idx) * line));
            b.li(rK, 1);
            b.li(rKmax, int64_t(epochs));
            b.label("epoch");
            b.li(rDelay, int64_t((idx * 31 + g * 11) & 63));
            b.label("delay");
            b.beqz(rDelay, "delaydone");
            b.addi(rDelay, rDelay, -1);
            b.j("delay");
            b.label("delaydone");
            bar.emitBarrier(b);
            b.sd(rK, rCell, 0);
            b.addi(rK, rK, 1);
            b.bge(rKmax, rK, "epoch");
            b.halt();
            bar.emitArrivalSections(b);
            ThreadContext *t = os.createThread(b.build());
            os.bindBarrierSlot(h, s, t->tid);
            os.startThread(t, CoreId(idx));
        }
    }

    OversubRun r;
    r.groups = groups;
    r.cycles = sys.run(200'000'000);
    bool cellsOk = true;
    for (unsigned idx = 0; idx < groups * tpg; ++idx)
        cellsOk = cellsOk &&
                  sys.memory().read64(cells + uint64_t(idx) * line) == epochs;
    r.ok = sys.allThreadsHalted() && !sys.anyBarrierError() && cellsOk;
    r.swapIns = os.virtualizer() ? os.virtualizer()->swapInCount() : 0;
    StatGroup &st = sys.statistics();
    r.swapStall = st.counterValue("barrier.swapStallCycles");
    r.fallbacks = st.counterValue("os.barrierFallbacks");
    r.birthDegraded = st.counterValue("os.barrierBirthDegraded");
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner(
        "Ablation: virtualized filters under group oversubscription");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned epochs = unsigned(opts.getUint("epochs", 64));
    unsigned swapCycles = unsigned(opts.getUint("swapcycles", 24));
    std::string jsonFile = bench::jsonPathFromCli(argc, argv);

    std::cout << "physical contexts: 2 (1 bank x 2 filters)"
              << "  threads/group: 2  epochs: " << epochs
              << "  swap cost: " << swapCycles << " cycles\n\n";

    printHeader(std::cout, "ratio",
                {"groups", "cycles", "cyc/epoch", "swapins", "swapstall",
                 "fallbacks", "ok"});

    std::vector<OversubRun> runs;
    for (unsigned groups : {2u, 4u, 8u, 12u, 16u}) {
        OversubRun r = runRatio(groups, epochs, swapCycles);
        std::ostringstream ratio;
        ratio << (groups + 1) / 2 << ":1";
        printRow(std::cout, ratio.str(),
                 {double(r.groups), double(r.cycles),
                  double(r.cycles) / epochs, double(r.swapIns),
                  double(r.swapStall),
                  double(r.fallbacks + r.birthDegraded), r.ok ? 1.0 : 0.0},
                 12, 0);
        runs.push_back(r);
    }

    bench::writeBenchJson(jsonFile, [&](JsonWriter &w) {
        w.beginObject();
        w.kv("bench", "abl_filter_oversub");
        w.kv("contexts", 2);
        w.kv("threadsPerGroup", 2);
        w.kv("epochs", epochs);
        w.kv("swapCycles", swapCycles);
        w.key("ratios");
        w.beginArray();
        for (const OversubRun &r : runs) {
            w.beginObject();
            w.kv("groups", r.groups);
            w.kv("cycles", r.cycles);
            w.kv("cyclesPerEpoch", double(r.cycles) / epochs);
            w.kv("swapIns", r.swapIns);
            w.kv("swapStallCycles", r.swapStall);
            w.kv("fallbacks", r.fallbacks);
            w.kv("birthDegraded", r.birthDegraded);
            w.kv("ok", r.ok);
            w.end();
        }
        w.end();
        w.end();
    });
    return 0;
}
