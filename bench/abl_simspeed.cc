/**
 * @file
 * Simulator-throughput ablation with host-cost attribution: "where do my
 * host cycles go?"
 *
 * Runs a small suite (barrier microbenchmark + two kernels) under the
 * host-side self-profiler (sim/hostprof.hh) and prints a per-component
 * wall-time breakdown — core tick, L1/L2 access, bus arbitration, filter
 * FSM, OS, event-queue overhead, setup, result checking — alongside the
 * headline simulated-cycles/s and MIPS numbers. A final A/B pass re-runs
 * one kernel with `observe=1` vs `observe=0` and reports the probe
 * publish/skip counters, quantifying what lazy probe publication saves.
 *
 * Options (key=value):
 *   json=FILE        full results document (suite, breakdown, A/B)
 *   hostprof=FILE    the raw self-profiler report as JSON
 *   timeseries=FILE  time-series counter artifact from the livermore3 run
 *   n=1024 reps=2 barriers=16 loops=2 sampleshift=5
 *   ... plus every CmpConfig override (cores=, l2banks=, busbw=, ...)
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/hostprof.hh"

using namespace bfsim;

namespace
{

struct SuiteRow
{
    std::string name;
    double wallSec = 0;
    uint64_t simCycles = 0;
    uint64_t instructions = 0;
};

double
secondsNow()
{
    return double(HostProfiler::nowNs()) * 1e-9;
}

void
printBreakdown(const HostProfReport &rep)
{
    std::cout << "\nhost-time breakdown (" << std::fixed
              << std::setprecision(1) << double(rep.wallNs) * 1e-6
              << " ms wall, 1-in-" << (1u << rep.sampleShift)
              << " sampling):\n"
              << std::left << std::setw(14) << "  phase" << std::right
              << std::setw(7) << "kind" << std::setw(12) << "count"
              << std::setw(11) << "ms" << std::setw(9) << "%wall" << "\n";
    for (const HostProfPhase &p : rep.phases) {
        if (p.count == 0)
            continue;
        std::cout << "  " << std::left << std::setw(12) << p.name
                  << std::right << std::setw(7)
                  << (p.scope ? "scope" : "event") << std::setw(12)
                  << p.count << std::setw(11) << std::setprecision(2)
                  << p.ns * 1e-6 << std::setw(8) << std::setprecision(1)
                  << (rep.wallNs > 0 ? 100.0 * p.ns / double(rep.wallNs)
                                     : 0.0)
                  << "%\n";
    }
    std::cout << std::setprecision(1)
              << "  attributed " << 100.0 * rep.attributedFrac
              << "% of wall; estimated profiler overhead "
              << std::setprecision(2) << 100.0 * rep.overheadFrac
              << "% (clock pair " << rep.calibClockPairNs
              << " ns, per-event " << rep.calibPerEventNs << " ns)\n"
              << "  " << std::setprecision(1) << rep.nsPerSimCycle
              << " host-ns per simulated cycle, " << std::setprecision(2)
              << rep.mips << " MIPS, " << rep.events << " events ("
              << rep.probeSkipped << " probe publications skipped, "
              << rep.probePublished << " published)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Ablation: simulator speed + host-cost attribution");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    const uint64_t n = opts.getUint("n", 1024);
    const unsigned reps = unsigned(opts.getUint("reps", 2));
    const unsigned barriers = unsigned(opts.getUint("barriers", 16));
    const unsigned loops = unsigned(opts.getUint("loops", 2));
    const unsigned shift = unsigned(opts.getUint("sampleshift", 5));
    const std::string hostprofPath = opts.getString("hostprof", "");
    const std::string timeseriesPath = opts.getString("timeseries", "");

    KernelParams params;
    params.n = n;
    params.reps = reps;

    HostProfiler &prof = HostProfiler::enable(shift);
    const double t0 = secondsNow();

    std::vector<SuiteRow> rows;
    uint64_t simCycles = 0, instructions = 0;

    {
        double s0 = secondsNow();
        auto r = measureBarrierLatency(cfg, BarrierKind::FilterDCache,
                                       cfg.numCores, barriers, loops);
        HostProfiler::Scope hps(HostPhase::Harness);
        rows.push_back({"barrier-micro", secondsNow() - s0,
                        uint64_t(r.totalCycles), 0});
    }
    {
        // The livermore3 run doubles as the time-series producer: its
        // system samples StatGroup deltas every tsinterval cycles and
        // writes the artifact at finalization.
        CmpConfig tsCfg = cfg;
        tsCfg.timeSeriesFile = timeseriesPath;
        double s0 = secondsNow();
        auto r = runKernel(tsCfg, KernelId::Livermore3, params, true,
                           BarrierKind::FilterDCache, cfg.numCores);
        HostProfiler::Scope hps(HostPhase::Harness);
        rows.push_back({"livermore3", secondsNow() - s0, uint64_t(r.cycles),
                        r.instructions});
    }
    {
        double s0 = secondsNow();
        auto r = runKernel(cfg, KernelId::Autocorr, params, true,
                           BarrierKind::FilterDCache, cfg.numCores);
        HostProfiler::Scope hps(HostPhase::Harness);
        rows.push_back({"autocorr", secondsNow() - s0, uint64_t(r.cycles),
                        r.instructions});
    }

    for (const SuiteRow &r : rows) {
        simCycles += r.simCycles;
        instructions += r.instructions;
    }
    const double wallSec = secondsNow() - t0;
    const HostProfReport rep = prof.report(simCycles, instructions);

    printHeader(std::cout, "suite", {"ms", "Mcyc/s", "MIPS"});
    for (const SuiteRow &r : rows) {
        printRow(std::cout, r.name,
                 {r.wallSec * 1e3,
                  r.wallSec > 0 ? double(r.simCycles) / r.wallSec / 1e6 : 0,
                  r.wallSec > 0
                      ? double(r.instructions) / r.wallSec / 1e6
                      : 0});
    }
    printRow(std::cout, "total",
             {wallSec * 1e3,
              wallSec > 0 ? double(simCycles) / wallSec / 1e6 : 0,
              wallSec > 0 ? double(instructions) / wallSec / 1e6 : 0});

    printBreakdown(rep);

    if (!hostprofPath.empty()) {
        writeJsonArtifact(hostprofPath,
                          [&](JsonWriter &w) { rep.writeJson(w); });
        std::cout << "wrote " << hostprofPath << "\n";
    }
    if (!timeseriesPath.empty())
        std::cout << "wrote " << timeseriesPath << "\n";

    // A/B: the same kernel with observability consumers attached vs
    // detached. With observe=0 no probe channel has listeners, so lazy
    // publication skips event construction entirely; the profiler's
    // publish/skip counters prove the saving instead of assuming it.
    struct AbRow
    {
        bool observe;
        double wallSec;
        uint64_t published, skipped;
    };
    std::vector<AbRow> ab;
    for (bool observe : {true, false}) {
        CmpConfig abCfg = cfg;
        abCfg.observability = observe;
        HostProfiler::enable(shift);
        double s0 = secondsNow();
        auto r = runKernel(abCfg, KernelId::Livermore3, params, true,
                           BarrierKind::FilterDCache, cfg.numCores);
        (void)r;
        ab.push_back({observe, secondsNow() - s0,
                      HostProfiler::active()->probePublishes(),
                      HostProfiler::active()->probeSkips()});
    }
    HostProfiler::disable();

    std::cout << "\nprobe-publication cost (livermore3):\n";
    for (const AbRow &r : ab) {
        std::cout << "  observe=" << (r.observe ? 1 : 0) << ": "
                  << std::fixed << std::setprecision(2) << r.wallSec * 1e3
                  << " ms, " << r.published << " probe events built, "
                  << r.skipped << " publications skipped\n";
    }

    bench::writeBenchJson(
        bench::jsonPathFromCli(argc, argv), [&](JsonWriter &w) {
            w.beginObject();
            w.kv("bench", "abl_simspeed");
            w.key("config");
            bench::writeConfigJson(w, cfg);
            w.key("suite").beginArray();
            for (const SuiteRow &r : rows) {
                w.beginObject();
                w.kv("name", r.name);
                w.kv("wallSec", r.wallSec);
                w.kv("simCycles", r.simCycles);
                w.kv("instructions", r.instructions);
                w.end();
            }
            w.end();
            w.kv("totalWallSec", wallSec);
            w.kv("totalSimCycles", simCycles);
            w.kv("totalInstructions", instructions);
            w.key("hostprof");
            rep.writeJson(w);
            w.key("probeAb").beginArray();
            for (const AbRow &r : ab) {
                w.beginObject();
                w.kv("observe", r.observe);
                w.kv("wallSec", r.wallSec);
                w.kv("probePublished", r.published);
                w.kv("probeSkipped", r.skipped);
                w.end();
            }
            w.end();
            w.end();
        });
    return 0;
}
