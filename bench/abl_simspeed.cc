/**
 * @file
 * Host-side microbenchmark (google-benchmark): simulator throughput on
 * the barrier microbenchmark and a kernel, in simulated-cycles and events
 * per host-second. Useful for tracking simulator performance regressions.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace bfsim;

namespace
{

void
BM_BarrierMicrobench(benchmark::State &state)
{
    CmpConfig cfg;
    cfg.numCores = unsigned(state.range(0));
    uint64_t simCycles = 0;
    for (auto _ : state) {
        auto r = measureBarrierLatency(cfg, BarrierKind::FilterDCache,
                                       cfg.numCores, 16, 2);
        simCycles += r.totalCycles;
        benchmark::DoNotOptimize(r.cyclesPerBarrier);
    }
    state.counters["simCycles/s"] = benchmark::Counter(
        double(simCycles), benchmark::Counter::kIsRate);
}

void
BM_KernelRun(benchmark::State &state)
{
    CmpConfig cfg;
    uint64_t simCycles = 0;
    for (auto _ : state) {
        KernelParams p;
        p.n = uint64_t(state.range(0));
        p.reps = 2;
        auto r = runKernel(cfg, KernelId::Livermore3, p, true,
                           BarrierKind::FilterDCache, cfg.numCores);
        simCycles += r.cycles;
        benchmark::DoNotOptimize(r.correct);
    }
    state.counters["simCycles/s"] = benchmark::Counter(
        double(simCycles), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_BarrierMicrobench)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_KernelRun)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
