/**
 * @file
 * Ablation: shared-bus bandwidth sensitivity (Section 4.2 attributes the
 * scaling knee past 16 cores to saturation of shared bus resources).
 *
 * Sweeps the data-bus width for a 32-core barrier microbenchmark. The
 * software centralized barrier, whose release storm refills every
 * spinner's flag line, degrades fastest as the bus narrows; the filter
 * barriers degrade more gently; the dedicated network (own wires) is
 * immune.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: bus bandwidth sensitivity, 32 cores");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned threads = unsigned(opts.getUint("cores", 32));
    unsigned barriers = unsigned(opts.getUint("barriers", 16));
    unsigned loops = unsigned(opts.getUint("loops", 4));

    std::vector<unsigned> widths = {4, 8, 16, 32, 64};
    std::vector<std::string> cols;
    for (unsigned w : widths)
        cols.push_back(std::to_string(w) + "B/cy");
    printHeader(std::cout, "cycles/barrier", cols);

    for (BarrierKind kind :
         {BarrierKind::SwCentral, BarrierKind::SwTree,
          BarrierKind::FilterDCache, BarrierKind::FilterDCachePP,
          BarrierKind::HwNetwork}) {
        std::vector<double> row;
        for (unsigned w : widths) {
            CmpConfig cfg = CmpConfig::fromOptions(opts);
            cfg.numCores = threads;
            cfg.busBytesPerCycle = w;
            auto r =
                measureBarrierLatency(cfg, kind, threads, barriers, loops);
            row.push_back(r.cyclesPerBarrier);
        }
        printRow(std::cout, barrierKindName(kind), row);
    }
    return 0;
}
