/**
 * @file
 * Figure 6: EEMBC-style Viterbi decoder speedup over sequential execution
 * on 16 cores, per barrier mechanism (K=5 rate-1/2 code, synthetic
 * encoded input standing in for getti.dat).
 *
 * Expected shape: limited improvement overall; the software-barrier
 * versions are *slower* than sequential (speedup < 1); only the
 * low-overhead barriers (filters, dedicated network) achieve a speedup.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 6: EEMBC Viterbi decoder speedup, 16 cores");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    KernelParams p;
    p.n = opts.getUint("n", 256); // message bits
    p.reps = unsigned(opts.getUint("reps", 2));

    std::cout << "message bits=" << p.n << " reps=" << p.reps
              << " cores=" << cfg.numCores << "\n";
    bench::speedupTable(cfg, KernelId::Viterbi, p, cfg.numCores,
                        bench::jsonPathFromCli(argc, argv));
    return 0;
}
