/**
 * @file
 * Figure 5: EEMBC-style autocorrelation speedup over sequential execution
 * on 16 cores, per barrier mechanism (lag = 32, speech-like input).
 *
 * Expected shape: parallelizes readily — a few x with software barriers,
 * roughly double that with filter barriers, filters within ~10% of the
 * dedicated network.
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 5: EEMBC autocorrelation speedup, 16 cores");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);

    KernelParams p;
    p.n = opts.getUint("n", 1024);
    p.lags = unsigned(opts.getUint("lags", 32));
    p.reps = unsigned(opts.getUint("reps", 2));

    std::cout << "samples=" << p.n << " lags=" << p.lags
              << " reps=" << p.reps << " cores=" << cfg.numCores << "\n";
    bench::speedupTable(cfg, KernelId::Autocorr, p, cfg.numCores,
                        bench::jsonPathFromCli(argc, argv));
    return 0;
}
