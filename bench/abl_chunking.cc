/**
 * @file
 * Ablation: the minimum-chunk rule (Section 4: partitions of at least 8
 * doubles ensure a cache line moves between cores at most once; smaller
 * chunks generate redundant coherence traffic, larger ones idle threads).
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: minimum chunk size (the 8-double rule)");
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);
    unsigned reps = unsigned(opts.getUint("reps", 6));

    std::vector<uint64_t> chunks = {1, 2, 4, 8, 16, 32};
    std::vector<std::string> cols;
    for (uint64_t c : chunks)
        cols.push_back("min=" + std::to_string(c));
    printHeader(std::cout, "cycles", cols);

    // Loop 2 *writes* its partitioned array: chunks below a cache line
    // make written lines migrate between cores repeatedly.
    for (BarrierKind kind :
         {BarrierKind::FilterDCache, BarrierKind::HwNetwork}) {
        std::vector<double> row;
        for (uint64_t c : chunks) {
            KernelParams p;
            p.n = opts.getUint("n", 512);
            p.reps = reps;
            p.minChunk = c;
            auto r = runKernel(cfg, KernelId::Livermore2, p, true, kind,
                               cfg.numCores);
            row.push_back(double(r.cycles));
        }
        printRow(std::cout, std::string("loop2 ") + barrierKindName(kind),
                 row, 12, 0);
    }
    // Loop 3 only *reads* its partitioned arrays: read sharing is free,
    // so small chunks cost little — the rule matters for written data.
    {
        std::vector<double> row;
        for (uint64_t c : chunks) {
            KernelParams p;
            p.n = opts.getUint("n3", 64);
            p.reps = reps;
            p.minChunk = c;
            auto r = runKernel(cfg, KernelId::Livermore3, p, true,
                               BarrierKind::FilterDCache, cfg.numCores);
            row.push_back(double(r.cycles));
        }
        printRow(std::cout, "loop3 filter-dcache", row, 12, 0);
    }
    return 0;
}
