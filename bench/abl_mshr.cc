/**
 * @file
 * Ablation: MSHR sufficiency (Section 3.2.1 — a fill blocked at a filter
 * occupies one MSHR in the requesting core; with one context per core,
 * one entry suffices and the filter adds no MSHR pressure).
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: L1 MSHR count vs filter barrier cost");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned threads = unsigned(opts.getUint("cores", 16));

    std::vector<unsigned> mshrs = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (unsigned m : mshrs)
        cols.push_back(std::to_string(m) + " MSHR");
    printHeader(std::cout, "", cols);

    for (BarrierKind kind :
         {BarrierKind::FilterICache, BarrierKind::FilterDCache}) {
        std::vector<double> row;
        for (unsigned m : mshrs) {
            CmpConfig cfg = CmpConfig::fromOptions(opts);
            cfg.numCores = threads;
            cfg.l1Mshrs = m;
            auto r = measureBarrierLatency(cfg, kind, threads, 32, 4);
            row.push_back(r.cyclesPerBarrier);
        }
        printRow(std::cout, barrierKindName(kind), row);
    }

    // Kernel view: the blocked fill must not strangle real memory
    // parallelism either.
    std::vector<double> row;
    for (unsigned m : mshrs) {
        CmpConfig cfg = CmpConfig::fromOptions(opts);
        cfg.numCores = threads;
        cfg.l1Mshrs = m;
        KernelParams p;
        p.n = 256;
        p.reps = 4;
        auto r = runKernel(cfg, KernelId::Livermore3, p, true,
                           BarrierKind::FilterDCache, threads);
        row.push_back(double(r.cycles));
    }
    printRow(std::cout, "livermore3 cycles", row, 12, 0);
    return 0;
}
