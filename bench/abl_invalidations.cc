/**
 * @file
 * Ablation: invalidation traffic of the ping-pong filter barriers vs the
 * entry/exit versions (Section 3.5: "invalidations consume non-local
 * bandwidth"; the sense-reversing variants perform one invalidation per
 * invocation instead of two).
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: invalidations per barrier invocation");
    auto opts = OptionMap::fromArgs(argc, argv);
    unsigned barriers = unsigned(opts.getUint("barriers", 32));
    unsigned loops = unsigned(opts.getUint("loops", 4));

    printHeader(std::cout, "mechanism",
                {"cores", "cyc/bar", "invAll/bar", "reqBusy/bar"});
    for (unsigned threads : {8u, 16u, 32u}) {
        for (BarrierKind kind :
             {BarrierKind::FilterICache, BarrierKind::FilterICachePP,
              BarrierKind::FilterDCache, BarrierKind::FilterDCachePP}) {
            CmpConfig cfg = CmpConfig::fromOptions(opts);
            cfg.numCores = threads;
            auto r =
                measureBarrierLatency(cfg, kind, threads, barriers, loops);
            double perBar = double(r.barriers) * threads;
            printRow(std::cout, barrierKindName(kind),
                     {double(threads), r.cyclesPerBarrier,
                      double(r.invAlls) / double(r.barriers),
                      double(r.reqBusBusyCycles) / double(r.barriers)});
            (void)perBar;
        }
    }
    std::cout << "\nPing-pong variants perform half the invalidations of\n"
              << "the entry/exit variants (one per thread per barrier).\n";
    return 0;
}
