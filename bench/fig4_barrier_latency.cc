/**
 * @file
 * Figure 4: average execution time of different barrier mechanisms vs
 * core count, measured as the paper does (Section 4.2): a loop of
 * consecutive barriers with no work between them, executed many times.
 *
 * Expected shape: the dedicated network is fastest and nearly flat; the
 * four filter variants sit well below both software barriers; the
 * software centralized barrier is the top (worst) curve and grows
 * steeply; scaling past 16 cores is visibly impacted by shared-bus and
 * bank saturation.
 *
 * Options: cores=<list via repeated runs>, barriers=N loops=N plus every
 * CmpConfig override (cores=, l2banks=, busbw=, ...). json=<file> dumps
 * the full per-mechanism measurements (including barrier-episode latency
 * percentiles) as JSON; traceout=<file> writes a Chrome trace of the last
 * run performed, and timeseries=<file> a counter time-series of the last
 * run. hostprof=<file> self-profiles the whole sweep and dumps the
 * per-component host-time breakdown (see docs/OBSERVABILITY.md).
 */

#include "bench_common.hh"
#include "sim/hostprof.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 4: barrier latency vs core count");
    auto opts = OptionMap::fromArgs(argc, argv);

    const std::string hostprofPath = opts.getString("hostprof", "");
    if (!hostprofPath.empty())
        HostProfiler::enable();
    uint64_t totalSimCycles = 0;

    std::vector<unsigned> coreCounts = {4, 8, 16, 32, 64};
    if (opts.has("onlycores"))
        coreCounts = {unsigned(opts.getUint("onlycores", 16))};

    std::vector<std::string> cols;
    for (unsigned n : coreCounts)
        cols.push_back(std::to_string(n) + "c");
    printHeader(std::cout, "cycles/barrier", cols);

    struct Cell
    {
        unsigned cores;
        BarrierLatencyResult r;
    };
    std::vector<std::pair<BarrierKind, std::vector<Cell>>> results;

    for (BarrierKind kind : allBarrierKinds()) {
        std::vector<double> row;
        std::vector<Cell> cells;
        for (unsigned n : coreCounts) {
            CmpConfig cfg = CmpConfig::fromOptions(opts);
            cfg.numCores = n;
            // The paper uses 64 barriers x 64 loops; software barriers at
            // high core counts simulate slowly, so scale the repetition
            // down with core count (steady state is reached far earlier).
            unsigned barriers =
                unsigned(opts.getUint("barriers", n >= 32 ? 16 : 64));
            unsigned loops =
                unsigned(opts.getUint("loops", n >= 32 ? 2 : 8));
            auto r = measureBarrierLatency(cfg, kind, n, barriers, loops);
            totalSimCycles += r.totalCycles;
            row.push_back(r.cyclesPerBarrier);
            cells.push_back({n, r});
        }
        printRow(std::cout, barrierKindName(kind), row);
        results.emplace_back(kind, std::move(cells));
    }

    bench::writeBenchJson(
        bench::jsonPathFromCli(argc, argv), [&](JsonWriter &w) {
            w.beginObject();
            w.kv("bench", "fig4_barrier_latency");
            w.key("coreCounts").beginArray();
            for (unsigned n : coreCounts)
                w.value(uint64_t(n));
            w.end();
            w.key("mechanisms").beginArray();
            for (const auto &[kind, cells] : results) {
                w.beginObject();
                w.kv("name", barrierKindName(kind));
                w.key("runs").beginArray();
                for (const Cell &c : cells) {
                    w.beginObject();
                    w.kv("cores", c.cores);
                    w.kv("cyclesPerBarrier", c.r.cyclesPerBarrier);
                    w.kv("totalCycles", uint64_t(c.r.totalCycles));
                    w.kv("barriers", c.r.barriers);
                    w.kv("reqBusBusyCycles", c.r.reqBusBusyCycles);
                    w.kv("respBusBusyCycles", c.r.respBusBusyCycles);
                    w.kv("invAlls", c.r.invAlls);
                    w.kv("granted", c.r.granted);
                    w.kv("episodes", c.r.episodes);
                    w.kv("episodeLatencyP50", c.r.episodeLatencyP50);
                    w.kv("episodeLatencyP95", c.r.episodeLatencyP95);
                    w.kv("episodeLatencyP99", c.r.episodeLatencyP99);
                    w.kv("arrivalSkewMean", c.r.arrivalSkewMean);
                    w.end();
                }
                w.end();
                w.end();
            }
            w.end();
            w.end();
        });

    if (HostProfiler *hp = HostProfiler::active()) {
        HostProfReport rep = hp->report(totalSimCycles, 0);
        writeJsonArtifact(hostprofPath,
                          [&](JsonWriter &w) { rep.writeJson(w); });
        std::cout << "wrote " << hostprofPath << "\n";
        HostProfiler::disable();
    }

    std::cout << "\nBus occupancy at the largest configuration indicates\n"
              << "where the shared-bus saturation of Section 4.2 begins.\n";
    return 0;
}
