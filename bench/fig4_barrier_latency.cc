/**
 * @file
 * Figure 4: average execution time of different barrier mechanisms vs
 * core count, measured as the paper does (Section 4.2): a loop of
 * consecutive barriers with no work between them, executed many times.
 *
 * Expected shape: the dedicated network is fastest and nearly flat; the
 * four filter variants sit well below both software barriers; the
 * software centralized barrier is the top (worst) curve and grows
 * steeply; scaling past 16 cores is visibly impacted by shared-bus and
 * bank saturation.
 *
 * Options: cores=<list via repeated runs>, barriers=N loops=N plus every
 * CmpConfig override (cores=, l2banks=, busbw=, ...).
 */

#include "bench_common.hh"

using namespace bfsim;

int
main(int argc, char **argv)
{
    bench::banner("Figure 4: barrier latency vs core count");
    auto opts = OptionMap::fromArgs(argc, argv);

    std::vector<unsigned> coreCounts = {4, 8, 16, 32, 64};
    if (opts.has("onlycores"))
        coreCounts = {unsigned(opts.getUint("onlycores", 16))};

    std::vector<std::string> cols;
    for (unsigned n : coreCounts)
        cols.push_back(std::to_string(n) + "c");
    printHeader(std::cout, "cycles/barrier", cols);

    for (BarrierKind kind : allBarrierKinds()) {
        std::vector<double> row;
        for (unsigned n : coreCounts) {
            CmpConfig cfg = CmpConfig::fromOptions(opts);
            cfg.numCores = n;
            // The paper uses 64 barriers x 64 loops; software barriers at
            // high core counts simulate slowly, so scale the repetition
            // down with core count (steady state is reached far earlier).
            unsigned barriers =
                unsigned(opts.getUint("barriers", n >= 32 ? 16 : 64));
            unsigned loops =
                unsigned(opts.getUint("loops", n >= 32 ? 2 : 8));
            auto r = measureBarrierLatency(cfg, kind, n, barriers, loops);
            row.push_back(r.cyclesPerBarrier);
        }
        printRow(std::cout, barrierKindName(kind), row);
    }

    std::cout << "\nBus occupancy at the largest configuration indicates\n"
              << "where the shared-bus saturation of Section 4.2 begins.\n";
    return 0;
}
