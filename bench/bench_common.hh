/**
 * @file
 * Shared helpers for the benchmark binaries that regenerate the paper's
 * tables and figures.
 *
 * Every bench accepts `json=<file>` (or `--json=<file>`): in addition to
 * the human-readable table on stdout, the run's configuration and results
 * are written to the file as one JSON document for plotting / regression
 * tracking. See docs/OBSERVABILITY.md.
 */

#ifndef BFSIM_BENCH_COMMON_HH
#define BFSIM_BENCH_COMMON_HH

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/workload.hh"
#include "sim/artifact.hh"
#include "sim/json.hh"
#include "sys/experiment.hh"

namespace bfsim::bench
{

/** Print the standard banner: what this binary reproduces. */
inline void
banner(const std::string &what)
{
    std::cout << "==============================================\n"
              << what << "\n"
              << "(barrier-filter CMP reproduction; simulated cycles,\n"
              << " shapes comparable to the paper, absolutes are not)\n"
              << "==============================================\n";
}

/** Paper-default machine with CLI overrides applied. */
inline CmpConfig
configFromCli(int argc, char **argv)
{
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);
    return cfg;
}

/** Value of json=<file> / --json=<file>, empty when absent. */
inline std::string
jsonPathFromCli(int argc, char **argv)
{
    auto opts = OptionMap::fromArgs(argc, argv);
    std::string path = opts.getString("json", "");
    if (path.empty())
        path = opts.getString("--json", "");
    return path;
}

/** The machine knobs that matter for interpreting results. */
inline void
writeConfigJson(JsonWriter &w, const CmpConfig &cfg)
{
    w.beginObject();
    w.kv("cores", cfg.numCores);
    w.kv("lineBytes", cfg.lineBytes);
    w.kv("l1SizeBytes", cfg.l1SizeBytes);
    w.kv("l2SizeBytes", cfg.l2SizeBytes);
    w.kv("l2Banks", cfg.l2Banks);
    w.kv("l2Latency", uint64_t(cfg.l2Latency));
    w.kv("l3Latency", uint64_t(cfg.l3Latency));
    w.kv("memLatency", uint64_t(cfg.memLatency));
    w.kv("busBytesPerCycle", cfg.busBytesPerCycle);
    w.kv("crossbar", cfg.crossbar);
    w.kv("filtersPerBank", cfg.filtersPerBank);
    w.kv("filterTimeout", uint64_t(cfg.filterTimeout));
    w.kv("filterRecovery", cfg.filterRecovery);
    w.kv("faults", cfg.faults.enabled);
    w.end();
}

/**
 * Render the document @p body produces and publish it atomically at
 * @p path (tmp + fsync + rename, see sim/artifact.hh) so a bench killed
 * mid-write never leaves a truncated artifact; announces the artifact on
 * stdout. No-op when @p path is empty.
 */
inline void
writeBenchJson(const std::string &path,
               const std::function<void(JsonWriter &)> &body)
{
    if (path.empty())
        return;
    writeJsonArtifact(path, body);
    std::cout << "\nwrote " << path << "\n";
}

/** One mechanism's result as a JSON object (shared row shape). */
inline void
writeMechanismJson(JsonWriter &w, const std::string &name,
                   const KernelRun &run, double speedup)
{
    w.beginObject();
    w.kv("name", name);
    w.kv("cycles", uint64_t(run.cycles));
    w.kv("speedup", speedup);
    w.kv("correct", run.correct);
    w.kv("instructions", run.instructions);
    w.kv("recoveries", run.recoveries);
    w.kv("fallbacks", run.fallbacks);
    w.kv("episodes", run.episodes);
    w.kv("episodeLatencyP50", run.episodeLatencyP50);
    w.kv("episodeLatencyP95", run.episodeLatencyP95);
    w.kv("episodeLatencyP99", run.episodeLatencyP99);
    w.end();
}

/**
 * Run one kernel sequentially and under every barrier mechanism; print a
 * speedup-vs-sequential table (the Figure 5 / Figure 6 format). When
 * @p jsonFile is non-empty, also emit the results as JSON.
 */
inline void
speedupTable(const CmpConfig &cfg, KernelId id, const KernelParams &params,
             unsigned threads, const std::string &jsonFile = "")
{
    auto seq = runKernel(cfg, id, params, false);
    std::cout << "sequential cycles: " << seq.cycles
              << (seq.correct ? "" : "  [INCORRECT RESULT]") << "\n\n";
    printHeader(std::cout, "barrier", {"cycles", "speedup", "ok"});

    std::vector<std::pair<BarrierKind, KernelRun>> rows;
    for (BarrierKind kind : allBarrierKinds()) {
        auto par = runKernel(cfg, id, params, true, kind, threads);
        printRow(std::cout, barrierKindName(kind),
                 {double(par.cycles),
                  double(seq.cycles) / double(par.cycles),
                  par.correct ? 1.0 : 0.0});
        rows.emplace_back(kind, par);
    }

    writeBenchJson(jsonFile, [&](JsonWriter &w) {
        w.beginObject();
        w.kv("kernel", kernelName(id));
        w.kv("threads", threads);
        w.kv("n", params.n);
        w.kv("reps", params.reps);
        w.key("config");
        writeConfigJson(w, cfg);
        w.key("sequential").beginObject();
        w.kv("cycles", uint64_t(seq.cycles));
        w.kv("correct", seq.correct);
        w.end();
        w.key("mechanisms").beginArray();
        for (const auto &[kind, par] : rows) {
            writeMechanismJson(w, barrierKindName(kind), par,
                               double(seq.cycles) / double(par.cycles));
        }
        w.end();
        w.end();
    });
}

/**
 * Vector-length sweep (the Figure 7/8/10 format): execution time of the
 * sequential version and of the parallel version under a set of barrier
 * mechanisms, one row per mechanism, one column per vector length. When
 * @p jsonFile is non-empty, also emit the results as JSON.
 */
inline void
vectorSweep(const CmpConfig &cfg, KernelId id,
            const std::vector<uint64_t> &lengths, unsigned reps,
            unsigned threads,
            const std::vector<BarrierKind> &kinds = allBarrierKinds(),
            const std::string &jsonFile = "")
{
    std::vector<std::string> cols;
    for (uint64_t n : lengths)
        cols.push_back("N=" + std::to_string(n));
    printHeader(std::cout, "cycles", cols);

    std::vector<std::pair<std::string, std::vector<double>>> rows;
    std::vector<double> seqRow;
    bool allCorrect = true;
    for (uint64_t n : lengths) {
        KernelParams p;
        p.n = n;
        p.reps = reps;
        auto r = runKernel(cfg, id, p, false);
        allCorrect &= r.correct;
        seqRow.push_back(double(r.cycles));
    }
    printRow(std::cout, "sequential", seqRow, 12, 0);
    rows.emplace_back("sequential", seqRow);

    for (BarrierKind kind : kinds) {
        std::vector<double> row;
        for (uint64_t n : lengths) {
            KernelParams p;
            p.n = n;
            p.reps = reps;
            auto r = runKernel(cfg, id, p, true, kind, threads);
            allCorrect &= r.correct;
            row.push_back(double(r.cycles));
        }
        printRow(std::cout, barrierKindName(kind), row, 12, 0);
        rows.emplace_back(barrierKindName(kind), row);
    }
    if (!allCorrect)
        std::cout << "WARNING: at least one run produced incorrect "
                     "results\n";

    writeBenchJson(jsonFile, [&](JsonWriter &w) {
        w.beginObject();
        w.kv("kernel", kernelName(id));
        w.kv("threads", threads);
        w.kv("reps", reps);
        w.kv("allCorrect", allCorrect);
        w.key("lengths").beginArray();
        for (uint64_t n : lengths)
            w.value(n);
        w.end();
        w.key("config");
        writeConfigJson(w, cfg);
        w.key("rows").beginArray();
        for (const auto &[name, row] : rows) {
            w.beginObject();
            w.kv("name", name);
            w.key("cycles").beginArray();
            for (double v : row)
                w.value(v);
            w.end();
            w.end();
        }
        w.end();
        w.end();
    });
}

} // namespace bfsim::bench

#endif // BFSIM_BENCH_COMMON_HH
