/**
 * @file
 * Shared helpers for the benchmark binaries that regenerate the paper's
 * tables and figures.
 */

#ifndef BFSIM_BENCH_COMMON_HH
#define BFSIM_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "kernels/workload.hh"
#include "sys/experiment.hh"

namespace bfsim::bench
{

/** Print the standard banner: what this binary reproduces. */
inline void
banner(const std::string &what)
{
    std::cout << "==============================================\n"
              << what << "\n"
              << "(barrier-filter CMP reproduction; simulated cycles,\n"
              << " shapes comparable to the paper, absolutes are not)\n"
              << "==============================================\n";
}

/** Paper-default machine with CLI overrides applied. */
inline CmpConfig
configFromCli(int argc, char **argv)
{
    auto opts = OptionMap::fromArgs(argc, argv);
    CmpConfig cfg = CmpConfig::fromOptions(opts);
    return cfg;
}

/**
 * Run one kernel sequentially and under every barrier mechanism; print a
 * speedup-vs-sequential table (the Figure 5 / Figure 6 format).
 */
inline void
speedupTable(const CmpConfig &cfg, KernelId id, const KernelParams &params,
             unsigned threads)
{
    auto seq = runKernel(cfg, id, params, false);
    std::cout << "sequential cycles: " << seq.cycles
              << (seq.correct ? "" : "  [INCORRECT RESULT]") << "\n\n";
    printHeader(std::cout, "barrier", {"cycles", "speedup", "ok"});
    for (BarrierKind kind : allBarrierKinds()) {
        auto par = runKernel(cfg, id, params, true, kind, threads);
        printRow(std::cout, barrierKindName(kind),
                 {double(par.cycles),
                  double(seq.cycles) / double(par.cycles),
                  par.correct ? 1.0 : 0.0});
    }
}

/**
 * Vector-length sweep (the Figure 7/8/10 format): execution time of the
 * sequential version and of the parallel version under a set of barrier
 * mechanisms, one row per mechanism, one column per vector length.
 */
inline void
vectorSweep(const CmpConfig &cfg, KernelId id,
            const std::vector<uint64_t> &lengths, unsigned reps,
            unsigned threads,
            const std::vector<BarrierKind> &kinds = allBarrierKinds())
{
    std::vector<std::string> cols;
    for (uint64_t n : lengths)
        cols.push_back("N=" + std::to_string(n));
    printHeader(std::cout, "cycles", cols);

    std::vector<double> seqRow;
    bool allCorrect = true;
    for (uint64_t n : lengths) {
        KernelParams p;
        p.n = n;
        p.reps = reps;
        auto r = runKernel(cfg, id, p, false);
        allCorrect &= r.correct;
        seqRow.push_back(double(r.cycles));
    }
    printRow(std::cout, "sequential", seqRow, 12, 0);

    for (BarrierKind kind : kinds) {
        std::vector<double> row;
        for (uint64_t n : lengths) {
            KernelParams p;
            p.n = n;
            p.reps = reps;
            auto r = runKernel(cfg, id, p, true, kind, threads);
            allCorrect &= r.correct;
            row.push_back(double(r.cycles));
        }
        printRow(std::cout, barrierKindName(kind), row, 12, 0);
    }
    if (!allCorrect)
        std::cout << "WARNING: at least one run produced incorrect "
                     "results\n";
}

} // namespace bfsim::bench

#endif // BFSIM_BENCH_COMMON_HH
