/**
 * @file
 * Differential barrier fuzzer CLI.
 *
 * Derives random (kernel, machine, fault-schedule) scenarios from seeds
 * and runs each under all seven barrier mechanisms with the invariant
 * checker armed, judging every run against the kernel's host-side golden
 * reference. Failures are shrunk to a minimal reproducer and written as
 * self-contained JSON artifacts (seed + machine recipe + checkpoint)
 * that `replay=<file>` re-executes deterministically.
 *
 * Usage:
 *   fuzz_barriers [seeds=0:16] [out=DIR] [budget=24] [replay=FILE]
 *
 *   seeds=A:B    fuzz seeds A inclusive to B exclusive (default 0:16)
 *   seed=N       fuzz exactly one seed
 *   churn=1      churn scenarios instead of kernels: oversubscribed
 *                virtualized filters, join/leave schedules, core kills
 *   out=DIR      write repro artifacts into DIR (default ".")
 *   budget=N     shrink-run budget per failure (default 24)
 *   summary=FILE rewrite a progress summary JSON after every seed
 *                (atomic publish; survives interruption)
 *   replay=FILE  replay one repro artifact instead of fuzzing
 *
 * SIGINT/SIGTERM (CI cancellation, ^C) stop the campaign at the next
 * seed boundary: every repro found so far is already on disk (atomic
 * tmp+rename publish), the summary is flushed with "interrupted": true,
 * and the process exits 130.
 *
 * Exit status: 0 all seeds clean, 1 failures found (artifacts written),
 * 2 usage/IO error, 130 interrupted. A replay exits 0 when the failure
 * reproduces.
 */

#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/artifact.hh"
#include "sim/config.hh"
#include "sim/hash.hh"
#include "sim/json.hh"
#include "sim/log.hh"
#include "sys/fuzz.hh"

using namespace bfsim;

namespace
{

volatile std::sig_atomic_t gInterrupted = 0;

void
onStopSignal(int)
{
    gInterrupted = 1;
}

/**
 * Publish the campaign summary atomically: interrupting the fuzzer at
 * any point leaves a complete, parseable summary of the work done so
 * far, never a truncated one.
 */
void
writeSummary(const std::string &path, uint64_t seedsPlanned,
             uint64_t seedsRun, unsigned failures,
             const std::vector<std::string> &artifacts, bool interrupted)
{
    writeJsonArtifact(path, [&](JsonWriter &w) {
        w.beginObject();
        w.kv("seedsPlanned", seedsPlanned);
        w.kv("seedsRun", seedsRun);
        w.kv("failures", failures);
        w.kv("interrupted", interrupted);
        w.key("artifacts").beginArray();
        for (const std::string &a : artifacts)
            w.value(a);
        w.end();
        w.end();
    });
}

int
replayArtifact(const std::string &path)
{
    std::ifstream f(path);
    if (!f) {
        std::cerr << "fuzz_barriers: cannot read " << path << "\n";
        return 2;
    }
    std::ostringstream text;
    text << f.rdbuf();

    Repro repro = parseRepro(text.str());
    std::cout << "replaying seed=" << toHex(repro.seed)
              << " kind=" << barrierKindName(repro.kind)
              << " kernel=" << kernelName(repro.sc.kernel)
              << " n=" << repro.sc.params.n
              << " threads=" << repro.sc.threads << "\n";

    FuzzRun run = replayRepro(repro);
    std::cout << "replay: failed=" << run.failed
              << " completed=" << run.completed
              << " correct=" << run.correct
              << " violations=" << run.violations;
    if (!run.exception.empty())
        std::cout << " exception=\"" << run.exception << "\"";
    std::cout << "\n";
    if (!run.firstViolation.empty())
        std::cout << "first violation: " << run.firstViolation << "\n";

    if (repro.checkpoint) {
        // Prove the replay followed the recorded run: the artifact's
        // hash chain must match the fresh chain point for point.
        auto div = firstDivergence(repro.checkpoint->chain, run.chain);
        if (div) {
            std::cout << "hash chain DIVERGES at sync point " << *div
                      << "\n";
        } else {
            std::cout << "hash chain matches the artifact ("
                      << run.chain.size() << " sync points)\n";
        }
    }

    if (!run.failed) {
        std::cout << "replay did NOT reproduce the failure\n";
        return 1;
    }
    std::cout << "failure reproduced\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    OptionMap opts = OptionMap::fromArgs(argc, argv);

    std::string replay = opts.getString("replay", "");
    if (!replay.empty())
        return replayArtifact(replay);

    uint64_t lo = 0, hi = 16;
    if (opts.has("seed")) {
        lo = opts.getUint("seed", 0);
        hi = lo + 1;
    } else {
        std::string range = opts.getString("seeds", "0:16");
        size_t colon = range.find(':');
        if (colon == std::string::npos) {
            std::cerr << "fuzz_barriers: seeds must be A:B\n";
            return 2;
        }
        lo = std::stoull(range.substr(0, colon));
        hi = std::stoull(range.substr(colon + 1));
    }
    std::string outDir = opts.getString("out", ".");
    std::string summaryPath = opts.getString("summary", "");
    unsigned budget = unsigned(opts.getUint("budget", 24));
    bool churn = opts.getUint("churn", 0) != 0;

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    unsigned failures = 0;
    uint64_t seedsRun = 0;
    std::vector<std::string> artifacts;
    writeSummary(summaryPath, hi - lo, 0, 0, artifacts, false);

    for (uint64_t seed = lo; seed < hi && !gInterrupted; ++seed) {
        std::cout << (churn ? "churn seed " : "seed ") << seed << ": "
                  << std::flush;
        std::optional<FuzzReport> rep = churn ? fuzzChurnSeed(seed, budget)
                                              : fuzzSeed(seed, budget);
        seedsRun++;
        if (rep) {
            ++failures;
            std::ostringstream name;
            name << outDir << "/repro-" << (churn ? "churn-" : "") << "seed"
                 << seed << "-" << barrierKindName(rep->kind) << ".json";
            writeReproFile(name.str(), *rep);
            artifacts.push_back(name.str());
            std::cout << "FAIL kind=" << barrierKindName(rep->kind)
                      << " violations=" << rep->run.violations
                      << " correct=" << rep->run.correct << " (shrunk to n="
                      << rep->shrunk.params.n << " threads="
                      << rep->shrunk.threads << " in " << rep->totalRuns
                      << " runs) -> " << name.str() << "\n";
            if (!rep->run.firstViolation.empty())
                std::cout << "  first violation: "
                          << rep->run.firstViolation << "\n";
        } else {
            std::cout << "clean\n";
        }
        writeSummary(summaryPath, hi - lo, seedsRun, failures, artifacts,
                     false);
    }

    if (gInterrupted) {
        writeSummary(summaryPath, hi - lo, seedsRun, failures, artifacts,
                     true);
        std::cout << "interrupted after " << seedsRun << " seed(s), "
                  << failures << " failure(s); artifacts flushed\n";
        return 130;
    }

    std::cout << (hi - lo) << " seed(s), " << failures << " failure(s)\n";
    return failures == 0 ? 0 : 1;
} catch (const FatalError &e) {
    std::cerr << "fuzz_barriers: " << e.what() << "\n";
    return 2;
}
