/**
 * @file
 * Soft-error RAS fault-campaign driver CLI (docs/ROBUSTNESS.md §11).
 *
 * A thin alias of the sweep CLI pointed at "ras"-mode specs: the spec's
 * sites x detect x bits axes cross with kernels/cores/mechanisms/seeds,
 * each run plants a targeted state flip and is classified
 * (detected-recovered / detected-unrecovered / undetected-benign /
 * silent-corruption / crash), and the aggregate's "rasCoverage" section
 * rolls the classifications up per detection tier.
 *
 *   ras_campaign spec=bench/sweeps/ras_smoke.json out=DIR
 *                [rasbaseline=bench/baselines/BENCH_ras_coverage.json]
 *                [rastol=0.05] [report=FILE]
 *   ras_campaign compare aggregate=FILE rasbaseline=FILE [report=FILE]
 *
 * Exit codes: 0 ok, 1 coverage regression, 2 usage/IO error, 3 degraded
 * (quarantined runs), 130 interrupted (resumable with resume=1).
 */

#include "sys/sweep.hh"

int
main(int argc, char **argv)
{
    return bfsim::sweepCliEntry(argc, argv);
}
