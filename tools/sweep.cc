/**
 * @file
 * Fault-tolerant sweep driver CLI.
 *
 * Driver mode (default):
 *   sweep spec=FILE out=DIR [resume=1] [jobs=N] [timeout=SEC]
 *         [maxattempts=N] [baseline=FILE] [speedbaseline=FILE]
 *         [cycletol=0.05] [mipstol=0.8] [report=FILE]
 *
 * Compare mode (gate an existing aggregate without re-running):
 *   sweep compare aggregate=FILE baseline=FILE
 *         [simspeed=FILE speedbaseline=FILE] [report=FILE]
 *
 * Worker mode is internal (the driver re-execs this binary with
 * --worker and BFSIM_SWEEP_WORKER=1); see src/sys/sweep.hh.
 *
 * Exit codes: 0 ok, 1 regression vs baseline, 2 usage/IO error,
 * 3 sweep degraded (quarantined runs), 130 interrupted (resumable).
 */

#include "sys/sweep.hh"

int
main(int argc, char **argv)
{
    return bfsim::sweepCliEntry(argc, argv);
}
